(* Enclave execution: enter/exit, AEX semantics, the ecall ABI, core
   cleaning, and enclave fault handlers. *)
module Hw = Sanctorum_hw
module S = Sanctorum.Sm
module E = Sanctorum.Api_error
module Img = Sanctorum.Image
open Sanctorum_os

let check_bool = Alcotest.(check bool)
let check_i64 = Alcotest.(check int64)
let is_error = function Error _ -> true | Ok _ -> false

let install tb image = Result.get_ok (Os.install_enclave tb.Testbed.os image)

let test_enter_exit_roundtrip () =
  let tb = Testbed.create () in
  let image =
    Img.of_program ~evbase:0x10000 Hw.Isa.[ Op_imm (Add, a7, zero, 1); Ecall ]
  in
  let inst = install tb image in
  let eid = inst.Os.eid and tid = List.hd inst.Os.tids in
  (match Os.run_enclave tb.Testbed.os ~eid ~tid ~core:0 ~fuel:100 () with
  | Ok Os.Exited -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected clean exit");
  (* thread can be entered again *)
  match Os.run_enclave tb.Testbed.os ~eid ~tid ~core:0 ~fuel:100 () with
  | Ok Os.Exited -> ()
  | Ok _ | Error _ -> Alcotest.fail "second run failed"

let test_enter_validation () =
  let tb = Testbed.create () in
  let image =
    Img.of_program ~evbase:0x10000 Hw.Isa.[ Op_imm (Add, a7, zero, 1); Ecall ]
  in
  let inst = install tb image in
  let sm = tb.Testbed.sm in
  let eid = inst.Os.eid and tid = List.hd inst.Os.tids in
  check_bool "bad core" true
    (is_error (S.enter_enclave sm ~caller:S.Os ~eid ~tid ~core:99));
  check_bool "enclave cannot self-enter" true
    (is_error (S.enter_enclave sm ~caller:(S.Enclave_caller eid) ~eid ~tid ~core:0));
  check_bool "bad tid" true
    (is_error (S.enter_enclave sm ~caller:S.Os ~eid ~tid:12345 ~core:0));
  (* loading enclave cannot be entered *)
  let eid2 = Os.alloc_metadata tb.Testbed.os `Enclave in
  Result.get_ok
    (S.create_enclave sm ~caller:S.Os ~eid:eid2 ~evbase:0x50000 ~evsize:4096 ());
  check_bool "loading enclave" true
    (is_error (S.enter_enclave sm ~caller:S.Os ~eid:eid2 ~tid ~core:0))

let test_aex_saves_and_scrubs () =
  let tb = Testbed.create () in
  (* Load a distinctive value into a register, then spin. *)
  let open Hw.Isa in
  let image =
    Img.of_program ~evbase:0x10000 (li a5 0x5ec2e7 @ [ j 0 ])
  in
  let inst = install tb image in
  let eid = inst.Os.eid and tid = List.hd inst.Os.tids in
  (match
     Os.run_enclave tb.Testbed.os ~eid ~tid ~core:0 ~fuel:100000 ~quantum:200 ()
   with
  | Ok Os.Preempted -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected preemption");
  (* AEX state exists *)
  check_bool "aex saved" true
    (Result.get_ok (S.thread_has_aex_state tb.Testbed.sm ~tid));
  (* the architected state visible to the OS is scrubbed *)
  let c = Hw.Machine.core tb.Testbed.machine 0 in
  check_i64 "a5 scrubbed" 0L (Hw.Machine.read_reg c Hw.Isa.a5);
  check_i64 "pc scrubbed" 0L c.Hw.Machine.pc;
  check_bool "satp cleared" true (c.Hw.Machine.satp_root = None);
  check_bool "domain is untrusted" true
    (c.Hw.Machine.domain = Hw.Trap.domain_untrusted);
  (* private microarchitectural state flushed *)
  Alcotest.(check int) "tlb flushed" 0 (Hw.Tlb.entry_count c.Hw.Machine.tlb);
  (* re-entry signals the AEX dump via a0 = 1 *)
  match
    Os.resume_enclave tb.Testbed.os ~eid ~tid ~core:0 ~fuel:50 ~quantum:10000 ()
  with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "resume: %s" (E.to_string e)

let test_aex_flag_visible_to_enclave () =
  let tb = Testbed.create () in
  let open Hw.Isa in
  (* If a0 = 1 (resumed after AEX) exit immediately; else spin. *)
  let image =
    Img.of_program ~evbase:0x10000
      [
        Branch (Bne, a0, zero, 8);
        j 0;
        Op_imm (Add, a7, zero, 1);
        Ecall;
      ]
  in
  let inst = install tb image in
  let eid = inst.Os.eid and tid = List.hd inst.Os.tids in
  (match
     Os.run_enclave tb.Testbed.os ~eid ~tid ~core:0 ~fuel:100000 ~quantum:100 ()
   with
  | Ok Os.Preempted -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected preemption");
  match Os.resume_enclave tb.Testbed.os ~eid ~tid ~core:0 ~fuel:1000 () with
  | Ok Os.Exited -> ()
  | Ok _ | Error _ -> Alcotest.fail "enclave did not observe the AEX flag"

let test_exit_clears_aex () =
  let tb = Testbed.create () in
  let open Hw.Isa in
  let image =
    Img.of_program ~evbase:0x10000
      [ Branch (Bne, a0, zero, 8); j 0; Op_imm (Add, a7, zero, 1); Ecall ]
  in
  let inst = install tb image in
  let eid = inst.Os.eid and tid = List.hd inst.Os.tids in
  ignore (Os.run_enclave tb.Testbed.os ~eid ~tid ~core:0 ~fuel:100000 ~quantum:100 ());
  ignore (Os.resume_enclave tb.Testbed.os ~eid ~tid ~core:0 ~fuel:1000 ());
  check_bool "aex cleared after voluntary exit" false
    (Result.get_ok (S.thread_has_aex_state tb.Testbed.sm ~tid))

let test_enclave_fault_without_handler () =
  let tb = Testbed.create () in
  let open Hw.Isa in
  (* touch an unmapped enclave address *)
  let image =
    Img.of_program ~evbase:0x10000 (li t0 0x18000 @ [ Load (Ld, a0, t0, 0) ])
  in
  let inst = install tb image in
  let eid = inst.Os.eid and tid = List.hd inst.Os.tids in
  match Os.run_enclave tb.Testbed.os ~eid ~tid ~core:0 ~fuel:1000 () with
  | Ok (Os.Faulted (Hw.Trap.Exception (Hw.Trap.Page_fault _))) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected delegated page fault"

let test_enclave_fault_handler_delivery () =
  let tb = Testbed.create () in
  let open Hw.Isa in
  let evbase = 0x10000 in
  (* Entry: register the handler (at evbase+0x40) via ecall 9, then
     touch an unmapped page. The handler stores the fault address to
     the data page and exits cleanly. *)
  let entry =
    li a0 (evbase + 0x40)
    @ [ Op_imm (Add, a7, zero, S.Ecall.set_fault_handler); Ecall ]
    @ li t0 0x18000
    @ [ Load (Ld, t1, t0, 0); j 0 ]
  in
  let entry_padded = entry @ List.init (16 - List.length entry) (fun _ -> nop) in
  let handler =
    li t2 (evbase + 4096)
    @ [ Store (Sd, a0, t2, 0); Op_imm (Add, a7, zero, S.Ecall.exit_enclave); Ecall ]
  in
  let image = Img.of_program ~evbase (entry_padded @ handler) in
  let inst = install tb image in
  let eid = inst.Os.eid and tid = List.hd inst.Os.tids in
  Os.clear_delegated_events tb.Testbed.os;
  (match Os.run_enclave tb.Testbed.os ~eid ~tid ~core:0 ~fuel:1000 () with
  | Ok Os.Exited -> ()
  | Ok o ->
      Alcotest.failf "expected handler-mediated exit, got %s"
        (match o with
        | Os.Preempted -> "preempted"
        | Os.Faulted _ -> "faulted"
        | Os.Fuel_exhausted -> "fuel"
        | Os.Killed -> "killed"
        | Os.Exited -> "exited")
  | Error e -> Alcotest.failf "run: %s" (E.to_string e));
  (* the OS never observed the fault *)
  let os_saw_fault =
    List.exists
      (function
        | Hw.Trap.Exception (Hw.Trap.Page_fault _) -> true
        | Hw.Trap.Exception _ | Hw.Trap.Interrupt _ -> false)
      (Os.delegated_events tb.Testbed.os)
  in
  check_bool "fault hidden from OS" false os_saw_fault

let test_ecall_mailbox_abi () =
  (* Two ISA enclaves exchange a message purely through the ecall ABI. *)
  let tb = Testbed.create () in
  let open Hw.Isa in
  let ev_r = 0x10000 in
  let ev_s = 0x40000 in
  (* The receiver is a real measured enclave; its accept/get side runs
     through the native path (the harness acting as the scheduled
     enclave), while the sender exercises the full ecall ABI. *)
  let recv_img =
    Img.of_program ~evbase:ev_r [ Op_imm (Add, a7, zero, 1); Ecall ]
  in
  let recv = install tb recv_img in
  let recv_eid = recv.Os.eid in
  (* Sender enclave: writes a message into its data page, sends it to
     recv_eid via the send_mail ecall. *)
  let msg_vaddr = ev_s + 4096 in
  let sender_prog =
    li t0 msg_vaddr
    @ li t1 0x42
    @ [ Store (Sd, t1, t0, 0) ]
    @ li a0 recv_eid
    @ li a1 msg_vaddr
    @ [ Op_imm (Add, a7, zero, S.Ecall.send_mail); Ecall ]
    @ [ mv s0 a0; Op_imm (Add, a7, zero, S.Ecall.exit_enclave); Ecall ]
  in
  let sender_img = Img.of_program ~evbase:ev_s sender_prog in
  let sender = install tb sender_img in
  (* the receiver accepts the true sender *)
  Result.get_ok
    (S.accept_mail tb.Testbed.sm ~caller:(S.Enclave_caller recv_eid)
       ~sender:(Sanctorum.Mailbox.From_enclave sender.Os.eid));
  (* run the sender: its ecall must deposit the mail *)
  (match
     Os.run_enclave tb.Testbed.os ~eid:sender.Os.eid
       ~tid:(List.hd sender.Os.tids) ~core:0 ~fuel:1000 ()
   with
  | Ok Os.Exited -> ()
  | Ok _ | Error _ -> Alcotest.fail "sender did not exit");
  (* the receiver retrieves it (native path) and sees the sender's
     true measurement *)
  match
    S.get_mail tb.Testbed.sm ~caller:(S.Enclave_caller recv_eid)
      ~sender:(Sanctorum.Mailbox.From_enclave sender.Os.eid)
  with
  | Ok (msg, meas) ->
      check_i64 "message content" 0x42L
        (Sanctorum_util.Bytesx.get_u64_le msg 0);
      check_bool "sender measurement" true
        (meas = Img.measurement sender_img)
  | Error e -> Alcotest.failf "get_mail: %s" (E.to_string e)

let test_ecall_error_codes () =
  let tb = Testbed.create () in
  let open Hw.Isa in
  (* send_mail to a bogus recipient: a0 should come back nonzero, and
     the enclave stores it then exits. *)
  let prog =
    li a0 12345
    @ li a1 0x11000
    @ [ Op_imm (Add, a7, zero, S.Ecall.send_mail); Ecall; mv t0 a0 ]
    @ li t1 0x11000
    @ [ Store (Sd, t0, t1, 0); Op_imm (Add, a7, zero, S.Ecall.exit_enclave); Ecall ]
  in
  let image = Img.of_program ~evbase:0x10000 prog in
  let inst = install tb image in
  (match
     Os.run_enclave tb.Testbed.os ~eid:inst.Os.eid ~tid:(List.hd inst.Os.tids)
       ~core:0 ~fuel:1000 ()
   with
  | Ok Os.Exited -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected exit");
  (* read the stored error code through the monitor's view *)
  let paddrs = Sanctorum_attack.Malicious_os.enclave_paddrs tb.Testbed.os ~eid:inst.Os.eid in
  let tables = List.length (Img.required_page_tables image) in
  let data_paddr = List.nth paddrs (tables + 1) in
  let v =
    Hw.Phys_mem.read_u64 (Hw.Machine.mem tb.Testbed.machine) data_paddr
  in
  check_bool "error code nonzero" true (v <> 0L)

let test_unknown_ecall () =
  let tb = Testbed.create () in
  let open Hw.Isa in
  let prog =
    [ Op_imm (Add, a7, zero, 999); Ecall; mv s0 a0;
      Op_imm (Add, a7, zero, S.Ecall.exit_enclave); Ecall ]
  in
  let inst = install tb (Img.of_program ~evbase:0x10000 prog) in
  match
    Os.run_enclave tb.Testbed.os ~eid:inst.Os.eid ~tid:(List.hd inst.Os.tids)
      ~core:0 ~fuel:1000 ()
  with
  | Ok Os.Exited -> ()
  | Ok _ | Error _ -> Alcotest.fail "unknown ecall should return an error, not kill"

let suite =
  ( "execution",
    [
      Alcotest.test_case "enter/exit roundtrip" `Quick test_enter_exit_roundtrip;
      Alcotest.test_case "enter validation" `Quick test_enter_validation;
      Alcotest.test_case "AEX saves and scrubs" `Quick test_aex_saves_and_scrubs;
      Alcotest.test_case "AEX flag visible on re-entry" `Quick
        test_aex_flag_visible_to_enclave;
      Alcotest.test_case "exit clears AEX state" `Quick test_exit_clears_aex;
      Alcotest.test_case "fault without handler delegates" `Quick
        test_enclave_fault_without_handler;
      Alcotest.test_case "fault handler delivery" `Quick
        test_enclave_fault_handler_delivery;
      Alcotest.test_case "ecall mailbox ABI" `Quick test_ecall_mailbox_abi;
      Alcotest.test_case "ecall error codes" `Quick test_ecall_error_codes;
      Alcotest.test_case "unknown ecall tolerated" `Quick test_unknown_ecall;
    ] )
