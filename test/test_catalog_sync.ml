(* The invariant catalog exists in four places: the three analysis
   passes export the ids they can report (Invariants.ids, Lockcheck.ids,
   Orderlint.ids), Checker.catalog maps every id to prose, and DESIGN.md
   §4.1 documents the whole table. These drift independently — a pass
   gains an id and the doc silently goes stale (exactly what happened to
   [core.quarantine] before this test existed) — so this suite pins all
   four to each other. *)
module A = Sanctorum_analysis

let sorted l = List.sort compare l

let check_same what expected actual =
  let missing = List.filter (fun id -> not (List.mem id actual)) expected in
  let extra = List.filter (fun id -> not (List.mem id expected)) actual in
  if missing <> [] || extra <> [] then
    Alcotest.failf "%s: missing [%s], extra [%s]" what
      (String.concat "; " missing)
      (String.concat "; " extra)

let pass_ids () = A.Invariants.ids @ A.Lockcheck.ids @ A.Orderlint.ids
let catalog_ids () = List.map fst A.Checker.catalog

(* Pull the ids out of the DESIGN.md §4.1 table: every row looks like
   [| `some.id` | pass | prose |]. The parse is deliberately narrow —
   a backquoted dotted identifier in the first column of a table row —
   so prose mentioning an id elsewhere in the file cannot satisfy it. *)
let design_md () =
  (* dune runtest executes from _build/default/test with DESIGN.md
     staged one level up (the dune [deps] stanza); running the binary
     by hand from the repo root finds the real file instead *)
  match
    List.find_opt Sys.file_exists
      [ "../DESIGN.md"; "DESIGN.md"; "../../DESIGN.md" ]
  with
  | Some p -> p
  | None -> Alcotest.fail "DESIGN.md not found next to the test binary"

let design_ids () =
  let ic = open_in (design_md ()) in
  let ids = ref [] in
  let in_section = ref false in
  (try
     while true do
       let line = input_line ic in
       if String.length line >= 4 && String.sub line 0 4 = "### " then
         in_section := String.length line >= 7 && String.sub line 0 7 = "### 4.1";
       if !in_section && String.length line > 4 && String.sub line 0 3 = "| `"
       then
         match String.index_from_opt line 3 '`' with
         | Some stop -> ids := String.sub line 3 (stop - 3) :: !ids
         | None -> ()
     done
   with End_of_file -> close_in ic);
  List.rev !ids

let test_passes_cover_catalog () =
  check_same "pass ids vs Checker.catalog" (catalog_ids ()) (pass_ids ());
  Alcotest.(check (list string))
    "catalog lists pass ids in pass order" (pass_ids ()) (catalog_ids ())

let test_no_duplicates () =
  let all = pass_ids () in
  Alcotest.(check int) "no duplicate ids across passes" (List.length all)
    (List.length (sorted (List.sort_uniq compare all)));
  let cat = catalog_ids () in
  Alcotest.(check int) "no duplicate catalog entries" (List.length cat)
    (List.length (List.sort_uniq compare cat))

let test_design_matches_catalog () =
  let design = design_ids () in
  if design = [] then
    Alcotest.fail "DESIGN.md §4.1 table not found (parser or doc moved)";
  check_same "DESIGN.md §4.1 vs Checker.catalog" (catalog_ids ()) design

let test_design_order_matches () =
  (* same rows is not enough: the doc table should list ids in catalog
     order so readers and the catalog agree on grouping *)
  Alcotest.(check (list string))
    "DESIGN.md §4.1 row order" (catalog_ids ()) (design_ids ())

let suite =
  ( "catalog-sync",
    [
      Alcotest.test_case "pass id exports cover the catalog" `Quick
        test_passes_cover_catalog;
      Alcotest.test_case "ids are unique" `Quick test_no_duplicates;
      Alcotest.test_case "DESIGN.md 4.1 matches the catalog" `Quick
        test_design_matches_catalog;
      Alcotest.test_case "DESIGN.md 4.1 row order matches" `Quick
        test_design_order_matches;
    ] )
