(* API fuzzing: random sequences of OS-level monitor calls — including
   nonsensical and adversarial ones — must never break the security
   invariants of DESIGN.md §4:

     I1  resource exclusivity: each memory unit has exactly one owner
         in monitor bookkeeping, and hardware ownership agrees;
     I2  the monitor's own memory is never owned by anyone else;
     I3  an initialized enclave's measurement never changes;
     I4  no call either crashes or silently corrupts: each call returns
         Ok or a typed Api_error.

   The generator is deliberately dumb (uniform over a small id space) so
   that most calls are invalid — exercising the validation paths — while
   enough succeed to build real enclaves. *)

module Hw = Sanctorum_hw
module S = Sanctorum.Sm
module R = Sanctorum.Resource
open Sanctorum_os

type op =
  | Create of int * int (* eid slot index, evbase selector *)
  | AllocPt of int * int * int (* enclave idx, vaddr selector, level *)
  | LoadPage of int * int (* enclave idx, vaddr selector *)
  | LoadThread of int * int (* enclave idx, tid slot *)
  | Init of int
  | Delete of int
  | Block of int (* unit selector *)
  | Clean of int
  | GrantOs of int
  | GrantEnclave of int * int (* unit, enclave idx *)
  | Accept of int * int
  | Enter of int * int (* enclave idx, core *)
  | AcceptMail of int * int (* enclave idx, sender idx *)
  | SendMail of int * int (* sender idx, recipient idx *)
  | GetMail of int * int

let op_gen =
  let open QCheck2.Gen in
  let small = int_range 0 3 in
  oneof
    [
      map2 (fun a b -> Create (a, b)) small small;
      map3 (fun a b c -> AllocPt (a, b, c)) small small (int_range 0 2);
      map2 (fun a b -> LoadPage (a, b)) small small;
      map2 (fun a b -> LoadThread (a, b)) small small;
      map (fun a -> Init a) small;
      map (fun a -> Delete a) small;
      map (fun a -> Block a) small;
      map (fun a -> Clean a) small;
      map (fun a -> GrantOs a) small;
      map2 (fun a b -> GrantEnclave (a, b)) small small;
      map2 (fun a b -> Accept (a, b)) small small;
      map2 (fun a b -> Enter (a, b)) small (int_range 0 3);
      map2 (fun a b -> AcceptMail (a, b)) small small;
      map2 (fun a b -> SendMail (a, b)) small small;
      map2 (fun a b -> GetMail (a, b)) small small;
    ]

(* A fixed id space the generator indexes into. *)
let eid_of tb i = Sanctorum.Sm.metadata_base tb.Testbed.sm + (i * 4096)
let tid_of tb i = Sanctorum.Sm.metadata_base tb.Testbed.sm + 65536 + (i * 1024)
let evbase_of b = 0x10000 + (b * 0x40000)
let unit_of tb u = ((1024 * 1024) / Os.unit_bytes tb.Testbed.os) + u

let apply tb op : unit =
  let sm = tb.Testbed.sm in
  let os_src = 1024 * 1024 - 8192 in
  ignore os_src;
  let ignore_result (_ : unit Sanctorum.Api_error.result) = () in
  match op with
  | Create (i, b) ->
      ignore_result
        (S.create_enclave sm ~caller:S.Os ~eid:(eid_of tb i)
           ~evbase:(evbase_of b) ~evsize:8192 ())
  | AllocPt (i, b, level) ->
      ignore_result
        (S.allocate_page_table sm ~caller:S.Os ~eid:(eid_of tb i)
           ~vaddr:(if level = 2 then 0 else evbase_of b)
           ~level)
  | LoadPage (i, b) ->
      ignore_result
        (S.load_page sm ~caller:S.Os ~eid:(eid_of tb i) ~vaddr:(evbase_of b)
           ~src_paddr:(768 * 1024) ~r:true ~w:true ~x:false)
  | LoadThread (i, t) ->
      ignore_result
        (S.load_thread sm ~caller:S.Os ~eid:(eid_of tb i) ~tid:(tid_of tb t)
           ~entry_pc:0x10000L ~entry_sp:0x11ff0L)
  | Init i -> ignore_result (S.init_enclave sm ~caller:S.Os ~eid:(eid_of tb i))
  | Delete i -> ignore_result (S.delete_enclave sm ~caller:S.Os ~eid:(eid_of tb i))
  | Block u ->
      ignore_result
        (S.block_resource sm ~caller:S.Os R.Memory_resource ~rid:(unit_of tb u))
  | Clean u ->
      ignore_result
        (S.clean_resource sm ~caller:S.Os R.Memory_resource ~rid:(unit_of tb u))
  | GrantOs u ->
      ignore_result
        (S.grant_resource sm ~caller:S.Os R.Memory_resource ~rid:(unit_of tb u)
           ~to_:S.To_os)
  | GrantEnclave (u, i) ->
      ignore_result
        (S.grant_resource sm ~caller:S.Os R.Memory_resource ~rid:(unit_of tb u)
           ~to_:(S.To_enclave (eid_of tb i)))
  | Accept (u, i) ->
      ignore_result
        (S.accept_resource sm
           ~caller:(S.Enclave_caller (eid_of tb i))
           R.Memory_resource ~rid:(unit_of tb u))
  | Enter (i, core) ->
      ignore_result
        (S.enter_enclave sm ~caller:S.Os ~eid:(eid_of tb i) ~tid:(tid_of tb 0)
           ~core)
  | AcceptMail (i, s) ->
      ignore_result
        (S.accept_mail sm
           ~caller:(S.Enclave_caller (eid_of tb i))
           ~sender:(Sanctorum.Mailbox.From_enclave (eid_of tb s)))
  | SendMail (s, r) ->
      ignore_result
        (S.send_mail sm
           ~caller:(S.Enclave_caller (eid_of tb s))
           ~recipient:(eid_of tb r) ~msg:"fuzz")
  | GetMail (i, s) -> begin
      match
        S.get_mail sm
          ~caller:(S.Enclave_caller (eid_of tb i))
          ~sender:(Sanctorum.Mailbox.From_enclave (eid_of tb s))
      with
      | Ok _ | Error _ -> ()
    end

(* I1/I2: monitor bookkeeping and hardware ownership agree, and the
   monitor's memory belongs to the monitor. *)
let ownership_invariant tb =
  let sm = tb.Testbed.sm in
  let pf = tb.Testbed.platform in
  let units = S.memory_units sm in
  let ub = S.memory_unit_bytes sm in
  let ok = ref true in
  for rid = 0 to units - 1 do
    match S.resource_state sm R.Memory_resource ~rid with
    | Error _ -> ok := false
    | Ok st -> begin
        let hw_owner = pf.Sanctorum_platform.Platform.owner_at ~paddr:(rid * ub) in
        match st with
        | R.Owned d ->
            (* hardware must agree for owned units *)
            if hw_owner <> d then ok := false
        | R.Blocked d ->
            (* blocked keeps the old hardware owner until cleaned *)
            if hw_owner <> d then ok := false
        | R.Available | R.Offered _ ->
            (* cleaned (or not-yet-accepted) units are untrusted in hw *)
            if hw_owner <> Hw.Trap.domain_untrusted then ok := false
      end
  done;
  (* monitor memory *)
  let sm_units = Sanctorum_platform.Platform.sm_memory_bytes / ub in
  for rid = 0 to sm_units - 1 do
    match S.resource_state sm R.Memory_resource ~rid with
    | Ok (R.Owned d) when d = Hw.Trap.domain_sm -> ()
    | Ok _ | Error _ -> ok := false
  done;
  !ok

(* The Sanctorum_analysis checker is a stronger version of the checks
   above: after every step the whole-state snapshot pass must stay
   silent, and at the end of the sequence so must the trace passes over
   the recorded telemetry. [failwith] with the violation ids so qcheck
   shrinks a failing sequence down to a minimal witness. *)
let analysis_clean violations ~ctx =
  match violations with
  | [] -> ()
  | vs ->
      failwith
        (Printf.sprintf "%s: %s" ctx
           (String.concat "; "
              (List.map
                 (fun v -> v.Sanctorum_analysis.Report.id)
                 vs)))

let fuzz_roundtrip backend =
  QCheck2.Test.make
    ~name:("fuzz: invariants hold under random API storms ("
          ^ Testbed.backend_name backend ^ ")")
    ~count:60
    QCheck2.Gen.(list_size (int_range 1 80) op_gen)
    (fun ops ->
      let sink = Sanctorum_telemetry.Sink.create ~capacity:(1 lsl 16) () in
      let tb = Testbed.create ~backend ~sink () in
      (* keep measurements of any enclave that reaches Initialized *)
      let sealed : (int, string) Hashtbl.t = Hashtbl.create 4 in
      List.iter
        (fun op ->
          apply tb op;
          (* I3: once sealed, a measurement never changes *)
          List.iter
            (fun eid ->
              match S.enclave_measurement tb.Testbed.sm ~eid with
              | Ok m -> begin
                  match Hashtbl.find_opt sealed eid with
                  | None -> Hashtbl.replace sealed eid m
                  | Some m0 -> if m <> m0 then failwith "measurement changed"
                end
              | Error _ -> Hashtbl.remove sealed eid)
            (S.enclaves tb.Testbed.sm);
          analysis_clean
            (Sanctorum_analysis.Checker.snapshot tb.Testbed.sm)
            ~ctx:"snapshot")
        ops;
      analysis_clean
        (Sanctorum_analysis.Checker.trace
           (Sanctorum_telemetry.Sink.events sink))
        ~ctx:"trace";
      ownership_invariant tb)

let suite =
  ( "fuzz",
    [
      QCheck_alcotest.to_alcotest (fuzz_roundtrip Testbed.Sanctum_backend);
      QCheck_alcotest.to_alcotest (fuzz_roundtrip Testbed.Keystone_backend);
    ] )
