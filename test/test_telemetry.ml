(* The telemetry subsystem: ring-buffer discipline, metrics-registry
   contracts, exporter well-formedness, and the Guardian-style check
   that one enclave run emits its lifecycle events in order. *)
module Hw = Sanctorum_hw
module S = Sanctorum.Sm
module Tel = Sanctorum_telemetry
open Sanctorum_os

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Ring buffer *)

let test_ring_wraparound () =
  let r = Tel.Ring.create ~capacity:4 in
  for i = 0 to 9 do
    Tel.Ring.push r i
  done;
  check_int "length" 4 (Tel.Ring.length r);
  check_int "pushed" 10 (Tel.Ring.pushed r);
  check_int "dropped" 6 (Tel.Ring.dropped r);
  Alcotest.(check (list int)) "surviving window, oldest first" [ 6; 7; 8; 9 ]
    (Tel.Ring.to_list r);
  Tel.Ring.clear r;
  check_int "cleared" 0 (Tel.Ring.length r);
  check_int "accounting reset" 0 (Tel.Ring.dropped r)

let test_ring_partial () =
  let r = Tel.Ring.create ~capacity:8 in
  Tel.Ring.push r "a";
  Tel.Ring.push r "b";
  Alcotest.(check (list string)) "no wrap" [ "a"; "b" ] (Tel.Ring.to_list r);
  check_int "nothing dropped" 0 (Tel.Ring.dropped r)

(* ------------------------------------------------------------------ *)
(* Metrics registry *)

let test_metrics_registry () =
  let m = Tel.Metrics.create () in
  let c1 = Tel.Metrics.counter m "hw.tlb.hits" in
  let c2 = Tel.Metrics.counter m "hw.tlb.hits" in
  Tel.Metrics.incr c1;
  Tel.Metrics.add c2 2;
  (* same name -> same instrument *)
  check_int "shared counter" 3 (Tel.Metrics.value c1);
  (* registering the same name as the other kind is a program error *)
  check_bool "kind conflict raises" true
    (match Tel.Metrics.histogram m "hw.tlb.hits" with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_bool "reverse conflict raises" true
    (let _ = Tel.Metrics.histogram m "sm.api.latency" in
     match Tel.Metrics.counter m "sm.api.latency" with
     | exception Invalid_argument _ -> true
     | _ -> false);
  check_int "registry size" 2 (List.length (Tel.Metrics.to_list m));
  Tel.Metrics.reset m;
  check_int "reset zeroes" 0 (Tel.Metrics.value c1)

let test_histogram_summary () =
  let m = Tel.Metrics.create () in
  let h = Tel.Metrics.histogram m "sm.api.latency" in
  List.iter (Tel.Metrics.observe h) [ 1; 2; 3; 10 ];
  let s = Tel.Metrics.summary h in
  check_int "count" 4 s.Tel.Metrics.count;
  check_int "sum" 16 s.Tel.Metrics.sum;
  check_int "min" 1 s.Tel.Metrics.min;
  check_int "max" 10 s.Tel.Metrics.max;
  Alcotest.(check (float 0.001)) "mean" 4.0 s.Tel.Metrics.mean

(* The log-linear buckets must keep nearby latency modes apart: a
   distribution with distinct p50/p90/p99 populations must report
   three distinct percentiles (each within the documented 25% bucket
   error), not one saturated bucket upper for all three. *)
let test_percentile_resolution () =
  let m = Tel.Metrics.create () in
  let h = Tel.Metrics.histogram m "latency.resolution" in
  for _ = 1 to 80 do Tel.Metrics.observe h 520 done;
  for _ = 1 to 15 do Tel.Metrics.observe h 700 done;
  for _ = 1 to 5 do Tel.Metrics.observe h 1000 done;
  let p50 = Tel.Metrics.percentile h 0.50 in
  let p90 = Tel.Metrics.percentile h 0.90 in
  let p99 = Tel.Metrics.percentile h 0.99 in
  check_int "p50 bucket" 639 p50;
  check_int "p90 bucket" 767 p90;
  check_int "p99 clamps to max" 1000 p99;
  check_bool "p50 < p90 < p99" true (p50 < p90 && p90 < p99);
  (* each upper bound stays within the advertised 25% of the mode *)
  List.iter
    (fun (p, v) ->
      check_bool
        (Printf.sprintf "p=%d within 25%% of %d" p v)
        true
        (p >= v && float_of_int p <= 1.25 *. float_of_int v))
    [ (p50, 520); (p90, 700); (p99, 1000) ];
  (* merge preserves the shape: fold a second histogram in and the
     percentiles of the union come out of the merged buckets *)
  let m2 = Tel.Metrics.create () in
  let h2 = Tel.Metrics.histogram m2 "latency.resolution" in
  for _ = 1 to 100 do Tel.Metrics.observe h2 520 done;
  Tel.Metrics.merge ~into:h2 h;
  check_int "merged count" 200 (Tel.Metrics.summary h2).Tel.Metrics.count;
  check_int "merged p50" 639 (Tel.Metrics.percentile h2 0.50);
  check_int "merged p99" 1000 (Tel.Metrics.percentile h2 0.99);
  (* the fleet folds per-shard [net.retransmit.delay] histograms the
     same way. Exponential backoff makes the modes geometrically
     spaced — base*2^k plus jitter — which is exactly the shape the
     log-linear buckets are supposed to keep apart through a merge:
     the percentiles of the union must still resolve distinct backoff
     generations, not collapse into one saturated bucket. *)
  let shard_a = Tel.Metrics.create () and shard_b = Tel.Metrics.create () in
  let ra = Tel.Metrics.histogram shard_a "net.retransmit.delay" in
  let rb = Tel.Metrics.histogram shard_b "net.retransmit.delay" in
  (* shard a retried early generations; shard b's peer was deaf longer *)
  for _ = 1 to 16 do Tel.Metrics.observe ra 24 done;
  for _ = 1 to 4 do Tel.Metrics.observe ra 48 done;
  List.iter (Tel.Metrics.observe rb) [ 96; 97; 99; 101; 192; 193; 195; 390 ];
  Tel.Metrics.merge ~into:ra rb;
  let s = Tel.Metrics.summary ra in
  check_int "retransmit union count" 28 s.Tel.Metrics.count;
  check_int "slowest retry survives the merge" 390 s.Tel.Metrics.max;
  let rp50 = Tel.Metrics.percentile ra 0.50 in
  let rp90 = Tel.Metrics.percentile ra 0.90 in
  let rp99 = Tel.Metrics.percentile ra 0.99 in
  check_bool "backoff generations stay distinct" true
    (rp50 < rp90 && rp90 < rp99);
  check_bool "p50 in the first backoff generations" true
    (rp50 >= 24 && rp50 <= 64);
  check_int "p99 clamps to the slowest retry" 390 rp99

(* ------------------------------------------------------------------ *)
(* A traced end-to-end run shared by the remaining tests. *)

let traced_run () =
  let metrics = Tel.Metrics.create () in
  let sink = Tel.Sink.create ~metrics () in
  let tb = Testbed.create ~sink () in
  let image =
    Sanctorum.Image.of_program ~evbase:0x10000
      Hw.Isa.[ Op_imm (Add, a7, zero, S.Ecall.exit_enclave); Ecall ]
  in
  (match Os.install_enclave tb.Testbed.os image with
  | Ok inst ->
      (match
         Os.run_enclave tb.Testbed.os ~eid:inst.Os.eid
           ~tid:(List.hd inst.Os.tids) ~core:0 ~fuel:1000 ()
       with
      | Ok Os.Exited -> ()
      | _ -> Alcotest.fail "enclave did not exit")
  | Error e -> Alcotest.failf "install: %s" (Sanctorum.Api_error.to_string e));
  (tb, sink, metrics)

(* ------------------------------------------------------------------ *)
(* Chrome trace export: structural well-formedness via our own parser. *)

let test_chrome_trace_wellformed () =
  let _tb, sink, metrics = traced_run () in
  let events = Tel.Sink.events sink in
  check_bool "events recorded" true (events <> []);
  let json =
    match Tel.Json.parse (Tel.Export.chrome_trace ~metrics events) with
    | Ok j -> j
    | Error m -> Alcotest.failf "trace does not parse: %s" m
  in
  let trace_events =
    match Option.bind (Tel.Json.member "traceEvents" json) Tel.Json.to_list_opt
    with
    | Some l -> l
    | None -> Alcotest.fail "no traceEvents array"
  in
  let name_of e =
    match Option.bind (Tel.Json.member "name" e) Tel.Json.to_string_opt with
    | Some n -> n
    | None -> Alcotest.fail "event without a name"
  in
  List.iter
    (fun e ->
      let _ = name_of e in
      check_bool "has ph" true (Tel.Json.member "ph" e <> None);
      check_bool "has pid" true (Tel.Json.member "pid" e <> None);
      (* metadata records carry no timestamp; everything else must *)
      match Option.bind (Tel.Json.member "ph" e) Tel.Json.to_string_opt with
      | Some "M" -> ()
      | _ ->
          check_bool "has ts" true
            (Option.bind (Tel.Json.member "ts" e) Tel.Json.to_int_opt <> None))
    trace_events;
  let names = List.map name_of trace_events in
  let has prefix =
    List.exists
      (fun n ->
        String.length n >= String.length prefix
        && String.sub n 0 (String.length prefix) = prefix)
      names
  in
  check_bool "trap events present" true (has "trap:");
  check_bool "SM API events present" true (has "sm:");
  check_bool "lifecycle events present" true (has "enclave:");
  (* metric totals ride along *)
  check_bool "otherData attached" true (Tel.Json.member "otherData" json <> None)

let test_jsonl_export () =
  let _tb, sink, _metrics = traced_run () in
  let lines =
    Tel.Export.jsonl (Tel.Sink.events sink)
    |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
  in
  check_int "one line per event" (List.length (Tel.Sink.events sink))
    (List.length lines);
  List.iter
    (fun line ->
      match Tel.Json.parse line with
      | Ok j -> check_bool "has cycles" true (Tel.Json.member "cycles" j <> None)
      | Error m -> Alcotest.failf "bad jsonl line: %s" m)
    lines

(* ------------------------------------------------------------------ *)
(* Orderliness: one create -> enter -> exit run must emit exactly that
   lifecycle sequence, in emission order, with the right eid. *)

let test_lifecycle_event_order () =
  let _tb, sink, metrics = traced_run () in
  let events = Tel.Sink.events sink in
  (* seq is globally increasing *)
  let rec ordered = function
    | (a : Tel.Event.t) :: (b :: _ as rest) ->
        a.Tel.Event.seq < b.Tel.Event.seq && ordered rest
    | [ _ ] | [] -> true
  in
  check_bool "sequence numbers increase" true (ordered events);
  let lifecycle =
    List.filter_map
      (fun (e : Tel.Event.t) ->
        match e.Tel.Event.payload with
        | Tel.Event.Enclave_created { eid } -> Some (`Created eid)
        | Tel.Event.Enclave_entered { eid; _ } -> Some (`Entered eid)
        | Tel.Event.Enclave_exited { eid; aex } -> Some (`Exited (eid, aex))
        | _ -> None)
      events
  in
  (match lifecycle with
  | [ `Created e1; `Entered e2; `Exited (e3, aex) ] ->
      check_bool "same enclave throughout" true (e1 = e2 && e2 = e3);
      check_bool "voluntary exit, not AEX" false aex
  | _ -> Alcotest.failf "unexpected lifecycle shape (%d events)"
           (List.length lifecycle));
  (* the counters saw the same story *)
  let value n =
    match Tel.Metrics.find metrics n with
    | Some (Tel.Metrics.Counter c) -> Tel.Metrics.value c
    | _ -> 0
  in
  check_int "one create call" 1 (value "sm.api.calls.create_enclave");
  check_int "one enter call" 1 (value "sm.api.calls.enter_enclave");
  check_bool "instructions retired" true (value "hw.instret" > 0)

(* ------------------------------------------------------------------ *)
(* Audit log: rejections are recorded with their reason. *)

let test_audit_rejections () =
  let tb, sink, _metrics = traced_run () in
  (* the OS is not an enclave: this call must be refused and audited *)
  (match S.exit_enclave tb.Testbed.sm ~caller:S.Os ~core:0 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "OS exit_enclave unexpectedly accepted");
  let entries = Tel.Audit.of_events (Tel.Sink.events sink) in
  check_bool "decisions recorded" true (entries <> []);
  check_bool "no rejection before the bad call" true
    (List.for_all
       (fun e -> e.Tel.Audit.api <> "exit_enclave" || e.Tel.Audit.caller <> "os")
       (Tel.Audit.accepted entries));
  match
    List.filter
      (fun e -> e.Tel.Audit.api = "exit_enclave" && e.Tel.Audit.caller = "os")
      (Tel.Audit.rejected entries)
  with
  | [ e ] ->
      check_bool "carries the reason" true
        (match e.Tel.Audit.decision with
        | Tel.Audit.Rejected reason -> reason <> ""
        | Tel.Audit.Accepted -> false)
  | l -> Alcotest.failf "expected one rejected entry, got %d" (List.length l)

(* ------------------------------------------------------------------ *)
(* The null sink records nothing and registers nothing. *)

let test_null_sink () =
  let tb = Testbed.create () in
  check_bool "null sink attached by default" false
    (Tel.Sink.enabled (S.sink tb.Testbed.sm));
  check_int "no events" 0 (List.length (Tel.Sink.events (S.sink tb.Testbed.sm)))

let suite =
  ( "telemetry",
    [
      Alcotest.test_case "ring: wraparound keeps newest window" `Quick
        test_ring_wraparound;
      Alcotest.test_case "ring: partial fill" `Quick test_ring_partial;
      Alcotest.test_case "metrics: get-or-create and kind conflicts" `Quick
        test_metrics_registry;
      Alcotest.test_case "metrics: histogram summary" `Quick
        test_histogram_summary;
      Alcotest.test_case "metrics: percentile resolution and merge" `Quick
        test_percentile_resolution;
      Alcotest.test_case "export: chrome trace is well-formed" `Quick
        test_chrome_trace_wellformed;
      Alcotest.test_case "export: jsonl round-trips" `Quick test_jsonl_export;
      Alcotest.test_case "events: lifecycle order for one run" `Quick
        test_lifecycle_event_order;
      Alcotest.test_case "audit: rejections carry their reason" `Quick
        test_audit_rejections;
      Alcotest.test_case "sink: null by default" `Quick test_null_sink;
    ] )
