(* The analysis layer (DESIGN.md invariant catalog): every cataloged
   invariant must (a) stay silent on honest executions and (b) fire
   when the one protection it encodes is broken. Each negative test
   injects exactly one fault — via the Testbed or Sm fault hooks, which
   bypass the API surface — and asserts the expected id appears. *)
module Hw = Sanctorum_hw
module S = Sanctorum.Sm
module A = Sanctorum_analysis
module Tel = Sanctorum_telemetry
open Sanctorum_os

let check_bool = Alcotest.(check bool)

let ids vs = List.sort_uniq compare (List.map (fun v -> v.A.Report.id) vs)

let fires id vs =
  if not (List.mem id (ids vs)) then
    Alcotest.failf "expected %s among [%s]" id (String.concat "; " (ids vs))

let silent vs =
  if vs <> [] then
    Alcotest.failf "expected no violations, got [%s]"
      (String.concat "; " (ids vs))

(* A small enclave with two private data mappings (so the aliasing test
   has two leaves to point at each other), installed and run to exit. *)
let installed_run ?sink ?(backend = Testbed.Sanctum_backend) () =
  let tb = Testbed.create ~backend ?sink () in
  let image =
    Sanctorum.Image.of_program ~evbase:0x10000 ~data_pages:1
      Hw.Isa.[ Op_imm (Add, a7, zero, S.Ecall.exit_enclave); Ecall ]
  in
  match Os.install_enclave tb.Testbed.os image with
  | Error e -> Alcotest.failf "install: %s" (Sanctorum.Api_error.to_string e)
  | Ok inst -> (
      match
        Os.run_enclave tb.Testbed.os ~eid:inst.Os.eid
          ~tid:(List.hd inst.Os.tids) ~core:0 ~fuel:1000 ()
      with
      | Ok Os.Exited -> (tb, inst)
      | _ -> Alcotest.fail "enclave did not exit")

(* ------------------------------------------------------------------ *)
(* Honest paths: zero findings. *)

let test_honest_snapshot backend () =
  let tb, _ = installed_run ~backend () in
  silent (A.Checker.snapshot tb.Testbed.sm)

let test_honest_trace () =
  let sink = Tel.Sink.create () in
  let tb, _ = installed_run ~sink () in
  let events = Tel.Sink.events sink in
  check_bool "trace recorded" true (events <> []);
  check_bool "lock events recorded" true
    (List.exists
       (fun e ->
         match e.Tel.Event.payload with
         | Tel.Event.Lock_acquired _ -> true
         | _ -> false)
       events);
  silent (A.Checker.run_all ~events tb.Testbed.sm)

(* ------------------------------------------------------------------ *)
(* Snapshot invariants: one injected fault each. *)

let test_own_exclusive () =
  let tb, inst = installed_run () in
  silent (A.Checker.snapshot tb.Testbed.sm);
  Testbed.corrupt_owner_map tb
    ~rid:(S.memory_units tb.Testbed.sm - 1);
  fires "own.exclusive" (A.Checker.snapshot tb.Testbed.sm);
  ignore inst

let test_own_sm_reserved () =
  let tb, _ = installed_run () in
  S.corrupt_resource_owner tb.Testbed.sm ~rid:0 Hw.Trap.domain_untrusted;
  fires "own.sm-reserved" (A.Checker.snapshot tb.Testbed.sm)

let test_pt_confined () =
  let tb, inst = installed_run () in
  Testbed.corrupt_page_table tb ~eid:inst.Os.eid;
  fires "pt.confined" (A.Checker.snapshot tb.Testbed.sm)

let test_pt_no_alias () =
  let tb, inst = installed_run () in
  Testbed.alias_page_table tb ~eid:inst.Os.eid;
  fires "pt.no-alias" (A.Checker.snapshot tb.Testbed.sm)

let test_tlb_no_stale () =
  let tb, inst = installed_run () in
  Testbed.skip_flush tb ~eid:inst.Os.eid;
  let vs = A.Checker.snapshot tb.Testbed.sm in
  fires "tlb.no-stale" vs;
  fires "cache.no-residue" vs

let test_l2_residue () =
  let tb, _ = installed_run () in
  (* a line tagged with monitor memory in the shared L2 *)
  ignore (Hw.Cache.access (Hw.Machine.l2 tb.Testbed.machine) ~paddr:0);
  fires "cache.no-residue" (A.Checker.snapshot tb.Testbed.sm)

let test_enclave_lifecycle () =
  let tb, inst = installed_run () in
  S.corrupt_enclave_lifecycle tb.Testbed.sm ~eid:inst.Os.eid;
  fires "enclave.lifecycle" (A.Checker.snapshot tb.Testbed.sm)

let test_thread_lifecycle () =
  let tb, inst = installed_run () in
  S.corrupt_thread_phase tb.Testbed.sm ~tid:(List.hd inst.Os.tids) ~core:0;
  fires "thread.lifecycle" (A.Checker.snapshot tb.Testbed.sm)

let test_core_domain () =
  let tb, _ = installed_run () in
  Testbed.corrupt_core_domain tb ~core:1;
  fires "core.domain" (A.Checker.snapshot tb.Testbed.sm)

let test_meta_slots () =
  let tb, _ = installed_run () in
  S.corrupt_metadata_slot tb.Testbed.sm;
  fires "meta.slots" (A.Checker.snapshot tb.Testbed.sm)

let test_lock_quiescent () =
  let tb, inst = installed_run () in
  Testbed.leak_lock tb ~eid:inst.Os.eid;
  fires "lock.quiescent" (A.Checker.snapshot tb.Testbed.sm)

(* ------------------------------------------------------------------ *)
(* Trace passes over synthetic event streams. *)

let trace payloads =
  List.mapi
    (fun i p -> { Tel.Event.seq = i; core = -1; cycles = i; payload = p })
    payloads

let api name =
  Tel.Event.Sm_api
    { api = name; caller = "os"; outcome = Tel.Event.Accepted; latency = 1 }

let acq l = Tel.Event.Lock_acquired { lock = l }
let rel l = Tel.Event.Lock_released { lock = l }

let test_lock_leak () =
  (* held across an API return *)
  fires "lock.leak"
    (A.Lockcheck.check (trace [ acq "enclave:0x1"; api "init_enclave" ]));
  (* released while not held *)
  fires "lock.leak" (A.Lockcheck.check (trace [ rel "enclave:0x1" ]));
  (* still held when the trace ends *)
  fires "lock.leak" (A.Lockcheck.check (trace [ acq "resource" ]));
  (* the balanced discipline is clean *)
  silent
    (A.Lockcheck.check
       (trace [ acq "resource"; rel "resource"; api "grant_resource" ]))

let test_lock_guard () =
  fires "lock.guard"
    (A.Lockcheck.check
       (trace
          [ Tel.Event.Guarded_write { lock = "enclave:0x1"; field = "phase" } ]));
  silent
    (A.Lockcheck.check
       (trace
          [
            acq "enclave:0x1";
            Tel.Event.Guarded_write { lock = "enclave:0x1"; field = "phase" };
            rel "enclave:0x1";
          ]))

let test_lock_order () =
  (* resource-then-enclave and enclave-then-resource in one trace: a
     class-order cycle (§V-A deadlock risk) *)
  fires "lock.order"
    (A.Lockcheck.check
       (trace
          [
            acq "resource";
            acq "enclave:0x1";
            rel "enclave:0x1";
            rel "resource";
            acq "enclave:0x2";
            acq "resource";
            rel "resource";
            rel "enclave:0x2";
          ]));
  (* a consistent order is clean *)
  silent
    (A.Lockcheck.check
       (trace
          [
            acq "resource";
            acq "enclave:0x1";
            acq "thread:0x9";
            rel "thread:0x9";
            rel "enclave:0x1";
            rel "resource";
          ]))

let created e = Tel.Event.Enclave_created { eid = e }
let inited e = Tel.Event.Enclave_initialized { eid = e }

let entered e =
  Tel.Event.Enclave_entered { eid = e; tid = 1; target_core = 0 }

let exited ?(aex = false) e = Tel.Event.Enclave_exited { eid = e; aex }

let test_order_lifecycle () =
  fires "order.create" (A.Orderlint.check (trace [ created 1; created 1 ]));
  fires "order.init" (A.Orderlint.check (trace [ inited 1 ]));
  fires "order.init"
    (A.Orderlint.check (trace [ created 1; inited 1; inited 1 ]));
  fires "order.enter" (A.Orderlint.check (trace [ created 1; entered 1 ]));
  fires "order.exit" (A.Orderlint.check (trace [ exited 1 ]));
  fires "order.destroy"
    (A.Orderlint.check
       (trace
          [
            created 1;
            inited 1;
            entered 1;
            Tel.Event.Enclave_destroyed { eid = 1 };
          ]));
  silent
    (A.Orderlint.check
       (trace
          [
            created 1;
            inited 1;
            entered 1;
            exited 1;
            Tel.Event.Enclave_destroyed { eid = 1 };
          ]))

let grant rid =
  Tel.Event.Region_granted { kind = "memory"; rid; owner = "os" }

let test_order_resources () =
  fires "order.grant" (A.Orderlint.check (trace [ grant 4; grant 4 ]));
  silent
    (A.Orderlint.check
       (trace
          [
            grant 4;
            Tel.Event.Region_freed { kind = "memory"; rid = 4 };
            grant 4;
          ]))

let test_order_aex_resume () =
  let read_aex =
    Tel.Event.Sm_api
      {
        api = "read_aex_state";
        caller = "enclave:0x1";
        outcome = Tel.Event.Accepted;
        latency = 1;
      }
  in
  fires "order.aex-resume"
    (A.Orderlint.check (trace [ created 1; inited 1; read_aex ]));
  silent
    (A.Orderlint.check
       (trace [ created 1; inited 1; entered 1; exited ~aex:true 1; read_aex ]))

let test_order_mailbox () =
  fires "order.mailbox"
    (A.Orderlint.check
       (trace [ Tel.Event.Mailbox_received { recipient = 1; sender = "os" } ]));
  silent
    (A.Orderlint.check
       (trace
          [
            Tel.Event.Mailbox_sent { sender = "os"; recipient = 1 };
            Tel.Event.Mailbox_received { recipient = 1; sender = "os" };
          ]))

(* ------------------------------------------------------------------ *)
(* The attack model: a subverted isolation primitive leaks to the OS
   probe AND the checker reports the divergence (detection, §IV). *)

let test_relax_protections () =
  let tb, inst = installed_run () in
  let os = tb.Testbed.os in
  let paddr =
    match Sanctorum_attack.Malicious_os.enclave_paddrs os ~eid:inst.Os.eid with
    | p :: _ -> p
    | [] -> Alcotest.fail "enclave owns no memory"
  in
  (match Sanctorum_attack.Malicious_os.os_load os ~core:1 ~paddr with
  | Sanctorum_attack.Malicious_os.Denied -> ()
  | Leaked _ -> Alcotest.fail "honest hardware leaked");
  silent (A.Checker.snapshot tb.Testbed.sm);
  check_bool "relaxed" true
    (Sanctorum_attack.Malicious_os.relax_protections os ~eid:inst.Os.eid);
  (match Sanctorum_attack.Malicious_os.os_load os ~core:1 ~paddr with
  | Sanctorum_attack.Malicious_os.Leaked _ -> ()
  | Denied -> Alcotest.fail "relaxed hardware still denies");
  fires "own.exclusive" (A.Checker.snapshot tb.Testbed.sm)

(* Every id a negative test exercises is cataloged, and vice versa all
   cataloged ids have a description. *)
let test_catalog () =
  List.iter
    (fun (id, descr) ->
      check_bool (id ^ " described") true (String.length descr > 0))
    A.Checker.catalog;
  let cataloged id = List.mem_assoc id A.Checker.catalog in
  List.iter
    (fun id -> check_bool (id ^ " cataloged") true (cataloged id))
    [
      "own.exclusive"; "own.sm-reserved"; "pt.confined"; "pt.no-alias";
      "tlb.no-stale"; "cache.no-residue"; "enclave.lifecycle";
      "thread.lifecycle"; "core.domain"; "meta.slots"; "lock.quiescent";
      "lock.leak"; "lock.guard"; "lock.order"; "order.create"; "order.init";
      "order.enter"; "order.exit"; "order.destroy"; "order.grant";
      "order.aex-resume"; "order.mailbox";
    ]

let suite =
  ( "analysis",
    [
      Alcotest.test_case "honest snapshot is silent (sanctum)" `Quick
        (test_honest_snapshot Testbed.Sanctum_backend);
      Alcotest.test_case "honest snapshot is silent (keystone)" `Quick
        (test_honest_snapshot Testbed.Keystone_backend);
      Alcotest.test_case "honest trace is silent" `Quick test_honest_trace;
      Alcotest.test_case "own.exclusive fires" `Quick test_own_exclusive;
      Alcotest.test_case "own.sm-reserved fires" `Quick test_own_sm_reserved;
      Alcotest.test_case "pt.confined fires" `Quick test_pt_confined;
      Alcotest.test_case "pt.no-alias fires" `Quick test_pt_no_alias;
      Alcotest.test_case "tlb.no-stale + cache.no-residue fire" `Quick
        test_tlb_no_stale;
      Alcotest.test_case "cache.no-residue fires on L2" `Quick test_l2_residue;
      Alcotest.test_case "enclave.lifecycle fires" `Quick
        test_enclave_lifecycle;
      Alcotest.test_case "thread.lifecycle fires" `Quick test_thread_lifecycle;
      Alcotest.test_case "core.domain fires" `Quick test_core_domain;
      Alcotest.test_case "meta.slots fires" `Quick test_meta_slots;
      Alcotest.test_case "lock.quiescent fires" `Quick test_lock_quiescent;
      Alcotest.test_case "lock.leak fires" `Quick test_lock_leak;
      Alcotest.test_case "lock.guard fires" `Quick test_lock_guard;
      Alcotest.test_case "lock.order fires" `Quick test_lock_order;
      Alcotest.test_case "order.* lifecycle lints fire" `Quick
        test_order_lifecycle;
      Alcotest.test_case "order.grant fires" `Quick test_order_resources;
      Alcotest.test_case "order.aex-resume fires" `Quick test_order_aex_resume;
      Alcotest.test_case "order.mailbox fires" `Quick test_order_mailbox;
      Alcotest.test_case "relaxed protections are detected" `Quick
        test_relax_protections;
      Alcotest.test_case "catalog covers every id" `Quick test_catalog;
    ] )
