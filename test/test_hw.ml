module Hw = Sanctorum_hw

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_i64 = Alcotest.(check int64)

(* ------------------------------------------------------------------ *)
(* Physical memory *)

let test_phys_mem () =
  let m = Hw.Phys_mem.create ~size:(64 * 1024) in
  check_int "size" (64 * 1024) (Hw.Phys_mem.size m);
  Hw.Phys_mem.write_u64 m 0x100 0x1122334455667788L;
  check_i64 "u64" 0x1122334455667788L (Hw.Phys_mem.read_u64 m 0x100);
  check_int "u8 LE" 0x88 (Hw.Phys_mem.read_u8 m 0x100);
  check_int "u16 LE" 0x7788 (Hw.Phys_mem.read_u16 m 0x100);
  Hw.Phys_mem.write_string m ~pos:0x200 "hello";
  Alcotest.(check string)
    "string" "hello"
    (Hw.Phys_mem.read_string m ~pos:0x200 ~len:5);
  Hw.Phys_mem.zero_range m ~pos:0x200 ~len:5;
  Alcotest.(check string)
    "zeroed" "\000\000\000\000\000"
    (Hw.Phys_mem.read_string m ~pos:0x200 ~len:5);
  check_int "page_of" 16 (Hw.Phys_mem.page_of (16 * 4096));
  (match Hw.Phys_mem.read_u64 m (64 * 1024) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range read succeeded");
  match Hw.Phys_mem.create ~size:100 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unaligned size accepted"

(* ------------------------------------------------------------------ *)
(* Cache model *)

let test_cache_basic () =
  let c = Hw.Cache.create Hw.Cache.default_l1 in
  let miss1, cy1 = Hw.Cache.access c ~paddr:0x1000 in
  check_bool "first is miss" false miss1;
  check_int "miss cycles" Hw.Cache.default_l1.Hw.Cache.miss_cycles cy1;
  let hit, cy2 = Hw.Cache.access c ~paddr:0x1000 in
  check_bool "second is hit" true hit;
  check_int "hit cycles" Hw.Cache.default_l1.Hw.Cache.hit_cycles cy2;
  let hit_same_line, _ = Hw.Cache.access c ~paddr:0x103f in
  check_bool "same line hits" true hit_same_line;
  let hit_next_line, _ = Hw.Cache.access c ~paddr:0x1040 in
  check_bool "next line misses" false hit_next_line;
  Hw.Cache.flush_all c;
  check_bool "flushed" false (Hw.Cache.probe c ~paddr:0x1000)

let test_cache_eviction () =
  (* 2-way cache: third distinct tag in one set evicts the LRU way. *)
  let cfg = { Hw.Cache.default_l1 with Hw.Cache.sets = 4; ways = 2 } in
  let c = Hw.Cache.create cfg in
  let addr tag = tag * 4 * 64 in
  ignore (Hw.Cache.access c ~paddr:(addr 1));
  ignore (Hw.Cache.access c ~paddr:(addr 2));
  check_bool "both resident" true
    (Hw.Cache.probe c ~paddr:(addr 1) && Hw.Cache.probe c ~paddr:(addr 2));
  ignore (Hw.Cache.access c ~paddr:(addr 1));
  (* tag 2 is now LRU *)
  ignore (Hw.Cache.access c ~paddr:(addr 3));
  check_bool "LRU evicted" false (Hw.Cache.probe c ~paddr:(addr 2));
  check_bool "MRU kept" true (Hw.Cache.probe c ~paddr:(addr 1));
  let hits, misses = Hw.Cache.stats c in
  check_int "hits" 1 hits;
  check_int "misses" 3 misses

let test_cache_partition_fn () =
  let c = Hw.Cache.create Hw.Cache.default_l2 in
  Hw.Cache.set_index_fn c (fun paddr -> if paddr < 0x1000 then 0 else 1);
  ignore (Hw.Cache.access c ~paddr:0x0);
  check_int "custom index low" 0 (Hw.Cache.set_of_paddr c 0x10);
  check_int "custom index high" 1 (Hw.Cache.set_of_paddr c 0x2000);
  Hw.Cache.flush_set c 0;
  check_bool "set flush" false (Hw.Cache.probe c ~paddr:0x0)

(* ------------------------------------------------------------------ *)
(* TLB *)

let test_tlb () =
  let t = Hw.Tlb.create ~entries:4 in
  let perms = { Hw.Tlb.r = true; w = false; x = false; u = true } in
  check_bool "empty" true (Hw.Tlb.lookup t ~vpn:5 = None);
  Hw.Tlb.insert t ~vpn:5 ~ppn:42 ~perms;
  (match Hw.Tlb.lookup t ~vpn:5 with
  | Some (42, p) -> check_bool "perms kept" true (p = perms)
  | Some _ | None -> Alcotest.fail "lookup after insert");
  (* update in place *)
  Hw.Tlb.insert t ~vpn:5 ~ppn:43 ~perms;
  check_int "one entry" 1 (Hw.Tlb.entry_count t);
  (* capacity: round robin replacement keeps the size bounded *)
  for vpn = 10 to 20 do
    Hw.Tlb.insert t ~vpn ~ppn:vpn ~perms
  done;
  check_int "bounded" 4 (Hw.Tlb.entry_count t);
  Hw.Tlb.flush t;
  check_int "flush" 0 (Hw.Tlb.entry_count t)

(* ------------------------------------------------------------------ *)
(* PMP *)

let test_pmp () =
  let p = Hw.Pmp.create () in
  (* No entries: M allowed, U denied. *)
  check_bool "bare M" true
    (Hw.Pmp.check p ~privilege:Hw.Pmp.M ~access:Hw.Trap.Read ~paddr:0x1000);
  check_bool "bare U" false
    (Hw.Pmp.check p ~privilege:Hw.Pmp.U ~access:Hw.Trap.Read ~paddr:0x1000);
  Hw.Pmp.set_entry p ~index:1 ~lo:0x1000 ~hi:0x2000 ~r:true ~w:false ~x:false
    ~locked:false;
  check_bool "U read in range" true
    (Hw.Pmp.check p ~privilege:Hw.Pmp.U ~access:Hw.Trap.Read ~paddr:0x1800);
  check_bool "U write in range" false
    (Hw.Pmp.check p ~privilege:Hw.Pmp.U ~access:Hw.Trap.Write ~paddr:0x1800);
  check_bool "U read out of range" false
    (Hw.Pmp.check p ~privilege:Hw.Pmp.U ~access:Hw.Trap.Read ~paddr:0x2000);
  (* Priority: lower index wins. *)
  Hw.Pmp.set_entry p ~index:0 ~lo:0x1800 ~hi:0x1900 ~r:false ~w:false ~x:false
    ~locked:false;
  check_bool "priority deny" false
    (Hw.Pmp.check p ~privilege:Hw.Pmp.U ~access:Hw.Trap.Read ~paddr:0x1880);
  check_bool "outside priority still ok" true
    (Hw.Pmp.check p ~privilege:Hw.Pmp.U ~access:Hw.Trap.Read ~paddr:0x1700);
  (* Locked entries bind M-mode and reject reprogramming. *)
  Hw.Pmp.set_entry p ~index:2 ~lo:0x0 ~hi:0x1000 ~r:false ~w:false ~x:false
    ~locked:true;
  check_bool "locked binds M" false
    (Hw.Pmp.check p ~privilege:Hw.Pmp.M ~access:Hw.Trap.Read ~paddr:0x500);
  (match
     Hw.Pmp.set_entry p ~index:2 ~lo:0 ~hi:10 ~r:true ~w:true ~x:true
       ~locked:false
   with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "locked entry reprogrammed");
  (* Unlocked match lets M through regardless of perms. *)
  check_bool "M through unlocked deny" true
    (Hw.Pmp.check p ~privilege:Hw.Pmp.M ~access:Hw.Trap.Read ~paddr:0x1880);
  (* range check *)
  check_bool "range ok" true
    (Hw.Pmp.check_range p ~privilege:Hw.Pmp.U ~access:Hw.Trap.Read ~lo:0x1000
       ~hi:0x1800);
  check_bool "range crossing deny" false
    (Hw.Pmp.check_range p ~privilege:Hw.Pmp.U ~access:Hw.Trap.Read ~lo:0x1000
       ~hi:0x2000)

(* ------------------------------------------------------------------ *)
(* Page tables *)

let test_page_table () =
  let mem = Hw.Phys_mem.create ~size:(1024 * 1024) in
  let next = ref 1 in
  let alloc_table () =
    let p = !next in
    incr next;
    p
  in
  let root = alloc_table () in
  let perms = { Hw.Page_table.r = true; w = true; x = false; u = true } in
  Hw.Page_table.map mem ~root_ppn:root ~vaddr:0x40000000 ~ppn:100 ~perms
    ~alloc_table;
  (match
     Hw.Page_table.walk mem ~root_ppn:root ~vaddr:0x40000123
       ~pte_fetch_ok:(fun _ -> true)
   with
  | Ok (100, p) -> check_bool "perms" true (p = perms)
  | Ok _ -> Alcotest.fail "wrong ppn"
  | Error _ -> Alcotest.fail "walk failed");
  (* unmapped sibling *)
  (match
     Hw.Page_table.walk mem ~root_ppn:root ~vaddr:0x40001000
       ~pte_fetch_ok:(fun _ -> true)
   with
  | Error Hw.Page_table.Invalid_mapping -> ()
  | Ok _ | Error _ -> Alcotest.fail "unmapped vaddr translated");
  (* remap rejection *)
  (match
     Hw.Page_table.map mem ~root_ppn:root ~vaddr:0x40000000 ~ppn:101 ~perms
       ~alloc_table
   with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "double map accepted");
  (* pte fetch veto: the Sanctum page-walk invariant *)
  (match
     Hw.Page_table.walk mem ~root_ppn:root ~vaddr:0x40000123
       ~pte_fetch_ok:(fun paddr -> paddr >= 0x10000)
   with
  | Error (Hw.Page_table.Walk_access_denied _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "vetoed walk succeeded");
  (* walk cost: 3 levels *)
  check_int "walk steps" 3
    (Hw.Page_table.walk_cost_levels mem ~root_ppn:root ~vaddr:0x40000123
       ~pte_fetch_ok:(fun _ -> true));
  (* unmap *)
  check_bool "unmap" true (Hw.Page_table.unmap mem ~root_ppn:root ~vaddr:0x40000000);
  check_bool "unmap again" false
    (Hw.Page_table.unmap mem ~root_ppn:root ~vaddr:0x40000000)

let test_superpage () =
  let mem = Hw.Phys_mem.create ~size:(1024 * 1024) in
  (* Hand-construct a level-1 superpage leaf (2 MiB). *)
  let root = 1 in
  let l1 = 2 in
  let vaddr = 0x40000000 in
  let perms = { Hw.Page_table.r = true; w = false; x = false; u = true } in
  let idx2 = (vaddr lsr 30) land 511 in
  Hw.Phys_mem.write_u64 mem
    ((root * 4096) + (8 * idx2))
    (Hw.Page_table.encode_pte ~ppn:l1
       ~perms:{ Hw.Page_table.r = false; w = false; x = false; u = false }
       ~valid:true);
  let idx1 = (vaddr lsr 21) land 511 in
  Hw.Phys_mem.write_u64 mem
    ((l1 * 4096) + (8 * idx1))
    (Hw.Page_table.encode_pte ~ppn:512 ~perms ~valid:true);
  (* offset 5 pages into the superpage resolves to frame 512+5 *)
  match
    Hw.Page_table.walk mem ~root_ppn:root ~vaddr:(vaddr + (5 * 4096) + 7)
      ~pte_fetch_ok:(fun _ -> true)
  with
  | Ok (ppn, _) -> check_int "superpage frame" 517 ppn
  | Error _ -> Alcotest.fail "superpage walk failed"

let test_pte_encoding () =
  let perms = { Hw.Page_table.r = true; w = false; x = true; u = true } in
  let pte = Hw.Page_table.encode_pte ~ppn:0x12345 ~perms ~valid:true in
  (match Hw.Page_table.decode_pte pte with
  | Ok (ppn, p, leaf) ->
      check_int "ppn" 0x12345 ppn;
      check_bool "leaf" true leaf;
      check_bool "perms" true (p = perms)
  | Error () -> Alcotest.fail "valid pte decoded as invalid");
  match Hw.Page_table.decode_pte 0L with
  | Error () -> ()
  | Ok _ -> Alcotest.fail "invalid pte decoded"

(* ------------------------------------------------------------------ *)
(* ISA encode/decode *)

let instr_gen =
  let open QCheck2.Gen in
  let reg = int_range 0 31 in
  let imm12 = int_range (-2048) 2047 in
  let shamt = int_range 0 63 in
  let alu =
    oneofl
      [ Hw.Isa.Add; Hw.Isa.Slt; Hw.Isa.Sltu; Hw.Isa.Xor; Hw.Isa.Or; Hw.Isa.And ]
  in
  let alu_r =
    oneofl
      [ Hw.Isa.Add; Hw.Isa.Sub; Hw.Isa.Sll; Hw.Isa.Slt; Hw.Isa.Sltu;
        Hw.Isa.Xor; Hw.Isa.Srl; Hw.Isa.Sra; Hw.Isa.Or; Hw.Isa.And ]
  in
  oneof
    [
      map2 (fun rd imm -> Hw.Isa.Lui (rd, imm)) reg (int_range (-524288) 524287);
      map2 (fun rd imm -> Hw.Isa.Auipc (rd, imm)) reg (int_range (-524288) 524287);
      map2 (fun rd imm -> Hw.Isa.Jal (rd, imm * 2)) reg (int_range (-524288) 524287);
      map3 (fun rd rs1 imm -> Hw.Isa.Jalr (rd, rs1, imm)) reg reg imm12;
      map3
        (fun (op, rs1) rs2 imm -> Hw.Isa.Branch (op, rs1, rs2, imm * 2))
        (pair
           (oneofl
              [ Hw.Isa.Beq; Hw.Isa.Bne; Hw.Isa.Blt; Hw.Isa.Bge; Hw.Isa.Bltu;
                Hw.Isa.Bgeu ])
           reg)
        reg (int_range (-2048) 2047);
      map3
        (fun (op, rd) rs1 imm -> Hw.Isa.Load (op, rd, rs1, imm))
        (pair
           (oneofl
              [ Hw.Isa.Lb; Hw.Isa.Lh; Hw.Isa.Lw; Hw.Isa.Ld; Hw.Isa.Lbu;
                Hw.Isa.Lhu; Hw.Isa.Lwu ])
           reg)
        reg imm12;
      map3
        (fun (op, rs2) rs1 imm -> Hw.Isa.Store (op, rs2, rs1, imm))
        (pair (oneofl [ Hw.Isa.Sb; Hw.Isa.Sh; Hw.Isa.Sw; Hw.Isa.Sd ]) reg)
        reg imm12;
      map3 (fun (op, rd) rs1 imm -> Hw.Isa.Op_imm (op, rd, rs1, imm))
        (pair alu reg) reg imm12;
      map3
        (fun (rd, rs1) rs2 op -> Hw.Isa.Op_imm (op, rd, rs1, rs2))
        (pair reg reg) shamt
        (oneofl [ Hw.Isa.Sll; Hw.Isa.Srl; Hw.Isa.Sra ]);
      map3 (fun (op, rd) rs1 rs2 -> Hw.Isa.Op (op, rd, rs1, rs2)) (pair alu_r reg)
        reg reg;
      map3 (fun rd rs1 rs2 -> Hw.Isa.Mul (rd, rs1, rs2)) reg reg reg;
      map (fun rd -> Hw.Isa.Csr_read_cycle rd) reg;
      oneofl [ Hw.Isa.Ecall; Hw.Isa.Ebreak; Hw.Isa.Fence ];
    ]

let qcheck_isa_roundtrip =
  QCheck2.Test.make ~name:"isa encode/decode roundtrip" ~count:2000 instr_gen
    (fun i -> Hw.Isa.decode (Hw.Isa.encode i) = Some i)

let test_isa_garbage () =
  (* All-zero and all-one words are not valid instructions. *)
  check_bool "zero word" true (Hw.Isa.decode 0l = None);
  check_bool "ones word" true (Hw.Isa.decode 0xffffffffl = None)

let test_isa_program_encoding () =
  let open Hw.Isa in
  let prog = li a0 42 @ [ Ecall ] in
  let s = encode_program prog in
  check_int "length" (4 * List.length prog) (String.length s);
  (* decodes back word by word *)
  List.iteri
    (fun i instr ->
      let w = String.get_int32_le s (4 * i) in
      check_bool "word matches" true (decode w = Some instr))
    prog

(* ------------------------------------------------------------------ *)
(* Machine execution semantics *)

let bare_machine () =
  let m =
    Hw.Machine.create
      { Hw.Machine.default_config with cores = 1; mem_bytes = 1024 * 1024 }
  in
  (* keep traps from killing the core silently in semantics tests *)
  let last = ref None in
  Hw.Machine.set_trap_handler m (fun _ c cause ->
      last := Some cause;
      c.Hw.Machine.halted <- true);
  (m, last)

let run_program m program =
  let code = Hw.Isa.encode_program program in
  Hw.Phys_mem.write_string (Hw.Machine.mem m) ~pos:0x1000 code;
  let c = Hw.Machine.core m 0 in
  Hw.Machine.reset_core_state c;
  c.Hw.Machine.pc <- 0x1000L;
  c.Hw.Machine.halted <- false;
  ignore (Hw.Machine.run m ~core:0 ~fuel:10000);
  c

let test_machine_arith () =
  let m, _ = bare_machine () in
  let open Hw.Isa in
  let c =
    run_program m
      (li a0 21
      @ [ Op_imm (Add, a1, a0, 21); Op (Add, a2, a0, a1);
          Op (Sub, a3, a2, a0); Mul (a4, a0, a1);
          Op_imm (Sll, a5, a0, 2); Ecall ])
  in
  check_i64 "addi" 42L (Hw.Machine.read_reg c Hw.Isa.a1);
  check_i64 "add" 63L (Hw.Machine.read_reg c Hw.Isa.a2);
  check_i64 "sub" 42L (Hw.Machine.read_reg c Hw.Isa.a3);
  check_i64 "mul" 882L (Hw.Machine.read_reg c Hw.Isa.a4);
  check_i64 "sll" 84L (Hw.Machine.read_reg c Hw.Isa.a5)

let test_machine_x0 () =
  let m, _ = bare_machine () in
  let open Hw.Isa in
  let c = run_program m (li t0 99 @ [ Op (Add, zero, t0, t0); Ecall ]) in
  check_i64 "x0 stays zero" 0L (Hw.Machine.read_reg c Hw.Isa.zero)

let test_machine_branches () =
  let m, _ = bare_machine () in
  let open Hw.Isa in
  (* if a0 < a1 then a2 = 1 else a2 = 2 *)
  let prog =
    li a0 3 @ li a1 5
    @ [
        Branch (Blt, a0, a1, 12) (* skip 2 instrs *);
        Op_imm (Add, a2, zero, 2);
        Jal (zero, 8);
        Op_imm (Add, a2, zero, 1);
        Ecall;
      ]
  in
  let c = run_program m prog in
  check_i64 "branch taken path" 1L (Hw.Machine.read_reg c Hw.Isa.a2)

let test_machine_memory () =
  let m, _ = bare_machine () in
  let open Hw.Isa in
  let prog =
    li t0 0x2000
    @ li t1 (-5)
    @ [
        Store (Sd, t1, t0, 0);
        Load (Ld, a0, t0, 0);
        Load (Lw, a1, t0, 0);
        Load (Lbu, a2, t0, 0);
        Store (Sb, t1, t0, 16);
        Load (Lb, a3, t0, 16);
        Ecall;
      ]
  in
  let c = run_program m prog in
  check_i64 "ld" (-5L) (Hw.Machine.read_reg c Hw.Isa.a0);
  check_i64 "lw sign" (-5L) (Hw.Machine.read_reg c Hw.Isa.a1);
  check_i64 "lbu" 0xfbL (Hw.Machine.read_reg c Hw.Isa.a2);
  check_i64 "lb sign" (-5L) (Hw.Machine.read_reg c Hw.Isa.a3)

let test_machine_misaligned () =
  (* Misaligned *data* accesses are supported in hardware (like most
     RV64 application cores): a word store/load at an odd address
     round-trips, little-endian at the byte level. Misaligned *fetch*
     addresses raise the precise instruction-address trap instead —
     see the fastpath suite for the pinned JALR regression. *)
  let m, last = bare_machine () in
  let open Hw.Isa in
  let prog =
    li t0 0x2001
    @ li t1 0x01234567
    @ [ Store (Sw, t1, t0, 0); Load (Lwu, a0, t0, 0); Ecall ]
  in
  let c = run_program m prog in
  check_bool "no trap before the exit ecall" true
    (!last = Some (Hw.Trap.Exception Hw.Trap.Ecall_user));
  check_i64 "misaligned store/load round-trips" 0x01234567L
    (Hw.Machine.read_reg c Hw.Isa.a0);
  Alcotest.(check int)
    "low byte lands at the misaligned address" 0x67
    (Hw.Phys_mem.read_u8 (Hw.Machine.mem m) 0x2001)

let test_machine_illegal () =
  let m, last = bare_machine () in
  Hw.Phys_mem.write_u32 (Hw.Machine.mem m) 0x1000 0l;
  let c = Hw.Machine.core m 0 in
  Hw.Machine.reset_core_state c;
  c.Hw.Machine.pc <- 0x1000L;
  c.Hw.Machine.halted <- false;
  ignore (Hw.Machine.run m ~core:0 ~fuel:10);
  match !last with
  | Some (Hw.Trap.Exception (Hw.Trap.Illegal_instruction _)) -> ()
  | _ -> Alcotest.fail "expected illegal instruction"

let test_machine_timer () =
  let m, last = bare_machine () in
  let c = Hw.Machine.core m 0 in
  let open Hw.Isa in
  let code = Hw.Isa.encode_program [ j 0 ] in
  Hw.Phys_mem.write_string (Hw.Machine.mem m) ~pos:0x1000 code;
  Hw.Machine.reset_core_state c;
  c.Hw.Machine.pc <- 0x1000L;
  c.Hw.Machine.halted <- false;
  c.Hw.Machine.timer_cmp <- Some (c.Hw.Machine.cycles + 50);
  ignore (Hw.Machine.run m ~core:0 ~fuel:100000);
  (match !last with
  | Some (Hw.Trap.Interrupt Hw.Trap.Timer) -> ()
  | _ -> Alcotest.fail "expected timer interrupt");
  check_bool "timer disarmed" true (c.Hw.Machine.timer_cmp = None)

let test_machine_rdcycle () =
  let m, _ = bare_machine () in
  let open Hw.Isa in
  let c =
    run_program m
      [ Csr_read_cycle a0; nop; nop; nop; Csr_read_cycle a1; Ecall ]
  in
  let t0 = Hw.Machine.read_reg c Hw.Isa.a0 in
  let t1 = Hw.Machine.read_reg c Hw.Isa.a1 in
  check_bool "cycles advance" true (Int64.compare t1 t0 > 0)

let test_machine_software_interrupt () =
  let m, last = bare_machine () in
  let c = Hw.Machine.core m 0 in
  Hw.Phys_mem.write_string (Hw.Machine.mem m) ~pos:0x1000
    (Hw.Isa.encode_program [ Hw.Isa.j 0 ]);
  Hw.Machine.reset_core_state c;
  c.Hw.Machine.pc <- 0x1000L;
  c.Hw.Machine.halted <- false;
  Hw.Machine.post_interrupt m ~core:0 Hw.Trap.Software;
  ignore (Hw.Machine.run m ~core:0 ~fuel:10);
  match !last with
  | Some (Hw.Trap.Interrupt Hw.Trap.Software) -> ()
  | _ -> Alcotest.fail "expected software interrupt"

let test_machine_phys_check () =
  let m, last = bare_machine () in
  Hw.Machine.set_phys_check m (fun ~core:_ ~access:_ ~paddr -> paddr < 0x3000);
  let open Hw.Isa in
  let _ = run_program m (li t0 0x4000 @ [ Load (Ld, a0, t0, 0); Ecall ]) in
  (match !last with
  | Some (Hw.Trap.Exception (Hw.Trap.Access_fault (Hw.Trap.Read, 0x4000L))) -> ()
  | _ -> Alcotest.fail "expected access fault");
  (* translate helper agrees *)
  let c = Hw.Machine.core m 0 in
  match Hw.Machine.translate m c ~access:Hw.Trap.Read ~vaddr:0x4000L with
  | Error (Hw.Trap.Access_fault _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "translate should deny"

let test_machine_dma () =
  let m, _ = bare_machine () in
  Hw.Machine.set_dma_check m (fun ~paddr ~len:_ -> paddr >= 0x8000);
  (match Hw.Machine.dma_write m ~paddr:0x8000 "data" with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "allowed dma failed");
  (match Hw.Machine.dma_read m ~paddr:0x8000 ~len:4 with
  | Ok "data" -> ()
  | Ok _ | Error _ -> Alcotest.fail "dma readback");
  match Hw.Machine.dma_write m ~paddr:0x1000 "x" with
  | Error (Hw.Trap.Access_fault _) -> ()
  | Ok () | Error _ -> Alcotest.fail "denied dma succeeded"

let suite =
  ( "hw",
    [
      Alcotest.test_case "phys_mem" `Quick test_phys_mem;
      Alcotest.test_case "cache basics" `Quick test_cache_basic;
      Alcotest.test_case "cache LRU eviction" `Quick test_cache_eviction;
      Alcotest.test_case "cache custom index" `Quick test_cache_partition_fn;
      Alcotest.test_case "tlb" `Quick test_tlb;
      Alcotest.test_case "pmp" `Quick test_pmp;
      Alcotest.test_case "page table walk/map" `Quick test_page_table;
      Alcotest.test_case "superpage leaf" `Quick test_superpage;
      Alcotest.test_case "pte encoding" `Quick test_pte_encoding;
      QCheck_alcotest.to_alcotest qcheck_isa_roundtrip;
      Alcotest.test_case "isa rejects garbage" `Quick test_isa_garbage;
      Alcotest.test_case "program encoding" `Quick test_isa_program_encoding;
      Alcotest.test_case "machine arithmetic" `Quick test_machine_arith;
      Alcotest.test_case "machine x0" `Quick test_machine_x0;
      Alcotest.test_case "machine branches" `Quick test_machine_branches;
      Alcotest.test_case "machine loads/stores" `Quick test_machine_memory;
      Alcotest.test_case "misaligned data access" `Quick
        test_machine_misaligned;
      Alcotest.test_case "illegal instruction" `Quick test_machine_illegal;
      Alcotest.test_case "timer interrupt" `Quick test_machine_timer;
      Alcotest.test_case "rdcycle" `Quick test_machine_rdcycle;
      Alcotest.test_case "software interrupt" `Quick test_machine_software_interrupt;
      Alcotest.test_case "phys check fault" `Quick test_machine_phys_check;
      Alcotest.test_case "dma checks" `Quick test_machine_dma;
    ] )
