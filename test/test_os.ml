(* The untrusted OS model itself: allocators, loader determinism,
   recycling, untrusted program execution. (Nothing here is trusted —
   these tests pin the harness the experiments stand on.) *)
module Hw = Sanctorum_hw
module Img = Sanctorum.Image
open Sanctorum_os

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_unit_allocator () =
  let tb = Testbed.create () in
  let os = tb.Testbed.os in
  let a = Os.alloc_units os ~count:3 in
  check_int "three units" 3 (List.length a);
  (* ascending and contiguous *)
  (match a with
  | [ x; y; z ] ->
      check_bool "contiguous" true (y = x + 1 && z = y + 1)
  | _ -> Alcotest.fail "wrong shape");
  let b = Os.alloc_units os ~count:2 in
  check_bool "disjoint" true
    (List.for_all (fun u -> not (List.mem u a)) b);
  Os.free_units os a;
  let c = Os.alloc_units os ~count:3 in
  check_bool "reuses freed units" true (c = a)

let test_metadata_recycling () =
  let tb = Testbed.create () in
  let os = tb.Testbed.os in
  let image =
    Img.of_program ~evbase:0x10000
      Hw.Isa.[ Op_imm (Add, a7, zero, 1); Ecall ]
  in
  let i1 = Result.get_ok (Os.install_enclave os image) in
  let eid1 = i1.Os.eid in
  Result.get_ok (Os.reclaim_enclave os ~eid:eid1);
  let i2 = Result.get_ok (Os.install_enclave os image) in
  check_int "slot recycled" eid1 i2.Os.eid;
  (* many install/reclaim cycles neither leak metadata nor units *)
  for _ = 1 to 300 do
    let i = Result.get_ok (Os.install_enclave os image) in
    Result.get_ok (Os.reclaim_enclave os ~eid:i.Os.eid)
  done;
  check_bool "still installable" true
    (Result.is_ok (Os.install_enclave os image))

let test_untrusted_program () =
  let tb = Testbed.create () in
  let open Hw.Isa in
  (* compute 7 * 9 in user mode under OS page tables *)
  let code = li t0 7 @ li t1 9 @ [ Mul (a0, t0, t1); Ecall ] in
  let outcome, result = Os.run_untrusted_program tb.Testbed.os ~code ~core:0 ~fuel:100 () in
  check_bool "exited" true (outcome = Os.Exited);
  Alcotest.(check int64) "result" 63L result;
  (* a fault in user code is delegated, not fatal to the harness *)
  let bad = li t0 0x7ffff000 @ [ Load (Ld, a0, t0, 0); Ecall ] in
  let outcome2, _ = Os.run_untrusted_program tb.Testbed.os ~code:bad ~core:0 ~fuel:100 () in
  (match outcome2 with
  | Os.Faulted (Hw.Trap.Exception (Hw.Trap.Page_fault _)) -> ()
  | Os.Faulted _ | Os.Exited | Os.Preempted | Os.Fuel_exhausted | Os.Killed ->
      Alcotest.fail "expected page fault")

let test_testbed_determinism () =
  (* identical seeds give identical monitor identities and enclave ids *)
  let boot seed =
    let tb = Testbed.create ~seed () in
    let pk = Sanctorum.Sm.get_field tb.Testbed.sm Sanctorum.Sm.Field_public_key in
    let image =
      Img.of_program ~evbase:0x10000
        Hw.Isa.[ Op_imm (Add, a7, zero, 1); Ecall ]
    in
    let i = Result.get_ok (Os.install_enclave tb.Testbed.os image) in
    (pk, i.Os.eid)
  in
  let pk1, eid1 = boot "alpha" in
  let pk2, eid2 = boot "alpha" in
  let pk3, _ = boot "beta" in
  check_bool "same seed, same identity" true (pk1 = pk2 && eid1 = eid2);
  check_bool "different seed, different identity" true (pk1 <> pk3)

let test_delegated_event_log () =
  let tb = Testbed.create () in
  let os = tb.Testbed.os in
  Os.clear_delegated_events os;
  let code = Hw.Isa.[ Ecall ] in
  let _ = Os.run_untrusted_program os ~code ~core:0 ~fuel:10 () in
  check_int "one event" 1 (List.length (Os.delegated_events os));
  Os.clear_delegated_events os;
  check_int "cleared" 0 (List.length (Os.delegated_events os))

let suite =
  ( "os",
    [
      Alcotest.test_case "unit allocator" `Quick test_unit_allocator;
      Alcotest.test_case "metadata recycling" `Quick test_metadata_recycling;
      Alcotest.test_case "untrusted program" `Quick test_untrusted_program;
      Alcotest.test_case "testbed determinism" `Quick test_testbed_determinism;
      Alcotest.test_case "delegated event log" `Quick test_delegated_event_log;
    ] )
