(* The fleet layer (DESIGN.md §9): domain-parallel shards under an
   attested control plane. The contracts under test:

   - channels deliver FIFO and block correctly across domains;
   - placement policies are pure functions of (policy, seed, history);
   - per-shard reports are bit-deterministic: two runs of the same
     config produce byte-identical architectural signatures;
   - a node whose evidence fails verification never joins and never
     receives a job — the negative half of remote attestation;
   - a quarantined shard is evicted and every job it held is either
     completed on a healthy shard or failed closed, with the
     completed/failed partition covering the job set exactly;
   - the property: for any (seed, policy, fault spec), the run ends
     with every shard clean or the fleet failed closed with every job
     accounted. *)
module Fl = Sanctorum_fleet.Cluster
module Policy = Sanctorum_fleet.Policy
module Channel = Sanctorum_fleet.Channel
module W = Sanctorum_workload.Workload
module Spec = Sanctorum_faults.Spec

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A config small enough that a run stays under a second: the qcheck
   property and the negative tests all start from here. *)
let small_config =
  {
    Fl.default with
    Fl.shards = 2;
    cores = 2;
    enclaves = 4;
    jobs = 6;
    target = 2;
    batch_rounds = 400;
  }

(* ------------------------------------------------------------------ *)
(* Channels. *)

let test_channel_fifo () =
  let ch = Channel.create () in
  List.iter (Channel.send ch) [ 1; 2; 3 ];
  check_int "len" 3 (Channel.length ch);
  check_int "fifo 1" 1 (Channel.recv ch);
  check_int "fifo 2" 2 (Channel.recv ch);
  check_bool "try_recv last" true (Channel.try_recv ch = Some 3);
  check_bool "try_recv empty" true (Channel.try_recv ch = None)

let test_channel_cross_domain () =
  let req = Channel.create () and resp = Channel.create () in
  let echo = Domain.spawn (fun () ->
      let rec loop () =
        match Channel.recv req with
        | 0 -> ()
        | n ->
            Channel.send resp (n * 2);
            loop ()
      in
      loop ())
  in
  for i = 1 to 100 do
    Channel.send req i;
    check_int "echoed doubled" (i * 2) (Channel.recv resp)
  done;
  Channel.send req 0;
  Domain.join echo

(* ------------------------------------------------------------------ *)
(* Placement policies. *)

let test_policy_round_robin () =
  let st = Policy.create Policy.Round_robin ~nodes:3 ~seed:1L in
  let picks = List.map (fun jid -> Policy.place st ~jid ~eligible:[ 0; 1; 2 ])
      [ 0; 1; 2; 3; 4; 5 ]
  in
  check_bool "cycles" true
    (picks = [ Some 0; Some 1; Some 2; Some 0; Some 1; Some 2 ]);
  (* an ineligible node is skipped, not waited for *)
  check_bool "skips ineligible" true
    (Policy.place st ~jid:6 ~eligible:[ 1 ] = Some 1);
  check_bool "empty eligible" true (Policy.place st ~jid:7 ~eligible:[] = None)

let test_policy_least_loaded () =
  let st = Policy.create Policy.Least_loaded ~nodes:3 ~seed:1L in
  ignore (Policy.place st ~jid:0 ~eligible:[ 0 ]);
  ignore (Policy.place st ~jid:1 ~eligible:[ 0 ]);
  (* node 0 carries 2 jobs; the next free choice must avoid it *)
  check_bool "avoids the loaded node" true
    (Policy.place st ~jid:2 ~eligible:[ 0; 1; 2 ] = Some 1);
  ignore (Policy.place st ~jid:3 ~eligible:[ 0; 1; 2 ]);
  check_int "loads recorded" 2 (Policy.load st 0);
  check_int "tie went to lowest id" 1 (Policy.load st 1)

let test_policy_affinity_deterministic () =
  let homes seed =
    let st = Policy.create Policy.Affinity ~nodes:4 ~seed in
    List.map (fun jid -> Policy.place st ~jid ~eligible:[ 0; 1; 2; 3 ])
      [ 0; 1; 2; 3; 4; 5; 6; 7 ]
  in
  check_bool "same seed, same homes" true (homes 7L = homes 7L);
  (* a job keeps its home across repeated placements (migration replays) *)
  let st = Policy.create Policy.Affinity ~nodes:4 ~seed:7L in
  let h1 = Policy.place st ~jid:5 ~eligible:[ 0; 1; 2; 3 ] in
  let h2 = Policy.place st ~jid:5 ~eligible:[ 0; 1; 2; 3 ] in
  check_bool "home is sticky" true (h1 = h2)

(* ------------------------------------------------------------------ *)
(* Fleet runs. *)

let test_clean_run () =
  let o = Fl.run small_config in
  check_bool "clean" true o.Fl.r_clean;
  check_int "all jobs completed" small_config.Fl.jobs
    (List.length o.Fl.r_completed);
  check_bool "none failed closed" true (o.Fl.r_failed_closed = []);
  check_int "both shards joined" 2
    (List.length (List.filter (fun s -> s.Fl.so_joined) o.Fl.r_shards));
  check_bool "attestations verified" true
    (List.assoc "fleet.attest.verified" o.Fl.r_counters = 2);
  check_bool "placements counted" true
    (List.assoc "fleet.jobs.placed" o.Fl.r_counters >= small_config.Fl.jobs)

(* Bit-determinism: the architectural half of every shard report — and
   the fleet-level job partition — replays byte-identically. *)
let test_shard_determinism () =
  let cfg = { small_config with Fl.policy = Policy.Affinity } in
  let a = Fl.run cfg and b = Fl.run cfg in
  List.iter2
    (fun sa sb ->
      Alcotest.(check string)
        (Printf.sprintf "shard %d replays byte-identically" sa.Fl.so_node)
        (W.arch_signature sa.Fl.so_report)
        (W.arch_signature sb.Fl.so_report))
    a.Fl.r_shards b.Fl.r_shards;
  check_bool "same completion set" true (a.Fl.r_completed = b.Fl.r_completed);
  check_bool "same failure set" true
    (a.Fl.r_failed_closed = b.Fl.r_failed_closed);
  check_int "same generations" a.Fl.r_generations b.Fl.r_generations

(* The attestation negative: a rogue shard presents corrupted evidence;
   it must never join, never hold a job, and the work must complete on
   the honest shard alone. *)
let test_rogue_node_starved () =
  let o = Fl.run { small_config with Fl.rogue = [ 1 ] } in
  let rogue = List.nth o.Fl.r_shards 1 in
  let honest = List.nth o.Fl.r_shards 0 in
  check_bool "rogue never joined" false rogue.Fl.so_joined;
  check_int "rogue installed nothing" 0 rogue.Fl.so_report.W.rp_installs;
  check_int "rogue ran nothing" 0 rogue.Fl.so_report.W.rp_exits;
  check_bool "honest shard did the work" true
    (honest.Fl.so_report.W.rp_installs > 0);
  check_int "rejection counted" 1
    (List.assoc "fleet.attest.rejected" o.Fl.r_counters);
  check_int "one join" 1 (List.assoc "fleet.nodes.joined" o.Fl.r_counters);
  check_int "all jobs still completed" small_config.Fl.jobs
    (List.length o.Fl.r_completed);
  check_bool "clean despite the rogue" true o.Fl.r_clean

(* The quarantine negative: machine checks take shard 0 down mid-run.
   The shard must be evicted, and every job is either completed on a
   healthy shard or failed closed — nothing lost, nothing duplicated. *)
let test_quarantine_migration () =
  let spec = Result.get_ok (Spec.parse "mce:2") in
  let cfg =
    {
      Fl.default with
      Fl.shards = 3;
      jobs = 12;
      enclaves = 6;
      target = 3;
      faults = [ (0, spec) ];
    }
  in
  let o = Fl.run cfg in
  check_bool "every job accounted" true o.Fl.r_accounted;
  let completed = List.length o.Fl.r_completed in
  let failed = List.length o.Fl.r_failed_closed in
  check_int "partition covers the job set" cfg.Fl.jobs (completed + failed);
  let sorted_union =
    List.sort compare (o.Fl.r_completed @ List.map fst o.Fl.r_failed_closed)
  in
  check_bool "no duplicates, no gaps" true
    (sorted_union = List.init cfg.Fl.jobs (fun i -> i));
  check_bool "no findings even under fire" true (o.Fl.r_findings = 0);
  (* if the faults actually bit (the schedule is seeded, so they do),
     the shard was evicted and its in-flight jobs moved *)
  let sh0 = List.hd o.Fl.r_shards in
  check_bool "faulted shard evicted" true sh0.Fl.so_evicted;
  check_bool "migrations recorded" true
    (List.assoc "fleet.jobs.migrated" o.Fl.r_counters > 0);
  check_int "eviction counted" 1
    (List.assoc "fleet.nodes.evicted" o.Fl.r_counters)

(* The fleet-wide property, the reason the layer exists: for any
   (seed, policy, fault spec) the run terminates with every job in
   exactly one of {completed, failed-closed}, and either everything is
   clean or the failure was contained by eviction — never an
   unaccounted job, never a finding. *)
let prop_fleet_accounts_for_every_job =
  QCheck2.Test.make
    ~name:"fleet: any (seed, policy, faults) accounts for every job" ~count:5
    ~print:(fun (seed, policy, fault) ->
      Printf.sprintf "(%d, %s, %s)" seed (Policy.name policy)
        (Option.value ~default:"none" fault))
    QCheck2.Gen.(
      triple (int_bound 1000) (oneofl Policy.all)
        (oneofl [ None; Some "mce:1"; Some "bitflip:3"; Some "mce:1,bitflip:2" ]))
    (fun (seed, policy, fault) ->
      let faults =
        match fault with
        | None -> []
        | Some s -> [ (1, Result.get_ok (Spec.parse s)) ]
      in
      let cfg =
        {
          small_config with
          Fl.seed = Printf.sprintf "prop-%d" seed;
          policy;
          faults;
          fault_horizon = 120_000;
        }
      in
      let o = Fl.run cfg in
      if not o.Fl.r_accounted then QCheck2.Test.fail_report "job lost";
      if o.Fl.r_findings <> 0 then
        QCheck2.Test.fail_reportf "%d findings" o.Fl.r_findings;
      List.iter
        (fun (s : Fl.shard_outcome) ->
          if s.Fl.so_joined && not s.Fl.so_evicted then begin
            if not s.Fl.so_report.W.rp_reclaimed then
              QCheck2.Test.fail_reportf "shard %d leaked" s.Fl.so_node;
            if not s.Fl.so_report.W.rp_msgs_accounted then
              QCheck2.Test.fail_reportf "shard %d mail unaccounted"
                s.Fl.so_node
          end)
        o.Fl.r_shards;
      true)

let suite =
  ( "fleet",
    [
      Alcotest.test_case "channel: fifo and try_recv" `Quick test_channel_fifo;
      Alcotest.test_case "channel: cross-domain echo" `Quick
        test_channel_cross_domain;
      Alcotest.test_case "policy: round-robin cycles and skips" `Quick
        test_policy_round_robin;
      Alcotest.test_case "policy: least-loaded avoids hot nodes" `Quick
        test_policy_least_loaded;
      Alcotest.test_case "policy: affinity homes are sticky" `Quick
        test_policy_affinity_deterministic;
      Alcotest.test_case "cluster: clean run completes every job" `Slow
        test_clean_run;
      Alcotest.test_case "cluster: shard reports replay byte-identically"
        `Slow test_shard_determinism;
      Alcotest.test_case "attestation: rogue node never receives a job" `Slow
        test_rogue_node_starved;
      Alcotest.test_case "quarantine: evicted shard's jobs land elsewhere"
        `Slow test_quarantine_migration;
      QCheck_alcotest.to_alcotest prop_fleet_accounts_for_every_job;
    ] )
