(* The fleet layer (DESIGN.md §9): domain-parallel shards under an
   attested control plane. The contracts under test:

   - channels deliver FIFO and block correctly across domains;
   - placement policies are pure functions of (policy, seed, history);
   - per-shard reports are bit-deterministic: two runs of the same
     config produce byte-identical architectural signatures;
   - a node whose evidence fails verification never joins and never
     receives a job — the negative half of remote attestation;
   - a quarantined shard is evicted and every job it held is either
     completed on a healthy shard or failed closed, with the
     completed/failed partition covering the job set exactly;
   - the property: for any (seed, policy, fault spec), the run ends
     with every shard clean or the fleet failed closed with every job
     accounted. *)
module Fl = Sanctorum_fleet.Cluster
module Policy = Sanctorum_fleet.Policy
module Channel = Sanctorum_fleet.Channel
module Netfault = Sanctorum_fleet.Netfault
module Session = Sanctorum_fleet.Session
module Node = Sanctorum_fleet.Node
module W = Sanctorum_workload.Workload
module Spec = Sanctorum_faults.Spec
module C = Sanctorum_crypto

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A config small enough that a run stays under a second: the qcheck
   property and the negative tests all start from here. *)
let small_config =
  {
    Fl.default with
    Fl.shards = 2;
    cores = 2;
    enclaves = 4;
    jobs = 6;
    target = 2;
    batch_rounds = 400;
  }

(* ------------------------------------------------------------------ *)
(* Channels. *)

let test_channel_fifo () =
  let ch = Channel.create () in
  List.iter (Channel.send ch) [ 1; 2; 3 ];
  check_int "len" 3 (Channel.length ch);
  check_int "fifo 1" 1 (Channel.recv ch);
  check_int "fifo 2" 2 (Channel.recv ch);
  check_bool "try_recv last" true (Channel.try_recv ch = Some 3);
  check_bool "try_recv empty" true (Channel.try_recv ch = None)

let test_channel_cross_domain () =
  let req = Channel.create () and resp = Channel.create () in
  let echo = Domain.spawn (fun () ->
      let rec loop () =
        match Channel.recv req with
        | 0 -> ()
        | n ->
            Channel.send resp (n * 2);
            loop ()
      in
      loop ())
  in
  for i = 1 to 100 do
    Channel.send req i;
    check_int "echoed doubled" (i * 2) (Channel.recv resp)
  done;
  Channel.send req 0;
  Domain.join echo

(* ------------------------------------------------------------------ *)
(* Placement policies. *)

let test_policy_round_robin () =
  let st = Policy.create Policy.Round_robin ~nodes:3 ~seed:1L in
  let picks = List.map (fun jid -> Policy.place st ~jid ~eligible:[ 0; 1; 2 ])
      [ 0; 1; 2; 3; 4; 5 ]
  in
  check_bool "cycles" true
    (picks = [ Some 0; Some 1; Some 2; Some 0; Some 1; Some 2 ]);
  (* an ineligible node is skipped, not waited for *)
  check_bool "skips ineligible" true
    (Policy.place st ~jid:6 ~eligible:[ 1 ] = Some 1);
  check_bool "empty eligible" true (Policy.place st ~jid:7 ~eligible:[] = None)

let test_policy_least_loaded () =
  let st = Policy.create Policy.Least_loaded ~nodes:3 ~seed:1L in
  ignore (Policy.place st ~jid:0 ~eligible:[ 0 ]);
  ignore (Policy.place st ~jid:1 ~eligible:[ 0 ]);
  (* node 0 carries 2 jobs; the next free choice must avoid it *)
  check_bool "avoids the loaded node" true
    (Policy.place st ~jid:2 ~eligible:[ 0; 1; 2 ] = Some 1);
  ignore (Policy.place st ~jid:3 ~eligible:[ 0; 1; 2 ]);
  check_int "loads recorded" 2 (Policy.load st 0);
  check_int "tie went to lowest id" 1 (Policy.load st 1)

let test_policy_affinity_deterministic () =
  let homes seed =
    let st = Policy.create Policy.Affinity ~nodes:4 ~seed in
    List.map (fun jid -> Policy.place st ~jid ~eligible:[ 0; 1; 2; 3 ])
      [ 0; 1; 2; 3; 4; 5; 6; 7 ]
  in
  check_bool "same seed, same homes" true (homes 7L = homes 7L);
  (* a job keeps its home across repeated placements (migration replays) *)
  let st = Policy.create Policy.Affinity ~nodes:4 ~seed:7L in
  let h1 = Policy.place st ~jid:5 ~eligible:[ 0; 1; 2; 3 ] in
  let h2 = Policy.place st ~jid:5 ~eligible:[ 0; 1; 2; 3 ] in
  check_bool "home is sticky" true (h1 = h2)

(* ------------------------------------------------------------------ *)
(* Fleet runs. *)

let test_clean_run () =
  let o = Fl.run small_config in
  check_bool "clean" true o.Fl.r_clean;
  check_int "all jobs completed" small_config.Fl.jobs
    (List.length o.Fl.r_completed);
  check_bool "none failed closed" true (o.Fl.r_failed_closed = []);
  check_int "both shards joined" 2
    (List.length (List.filter (fun s -> s.Fl.so_joined) o.Fl.r_shards));
  check_bool "attestations verified" true
    (List.assoc "fleet.attest.verified" o.Fl.r_counters = 2);
  check_bool "placements counted" true
    (List.assoc "fleet.jobs.placed" o.Fl.r_counters >= small_config.Fl.jobs)

(* Bit-determinism: the architectural half of every shard report — and
   the fleet-level job partition — replays byte-identically. *)
let test_shard_determinism () =
  let cfg = { small_config with Fl.policy = Policy.Affinity } in
  let a = Fl.run cfg and b = Fl.run cfg in
  List.iter2
    (fun sa sb ->
      Alcotest.(check string)
        (Printf.sprintf "shard %d replays byte-identically" sa.Fl.so_node)
        (W.arch_signature sa.Fl.so_report)
        (W.arch_signature sb.Fl.so_report))
    a.Fl.r_shards b.Fl.r_shards;
  check_bool "same completion set" true (a.Fl.r_completed = b.Fl.r_completed);
  check_bool "same failure set" true
    (a.Fl.r_failed_closed = b.Fl.r_failed_closed);
  check_int "same generations" a.Fl.r_generations b.Fl.r_generations

(* The attestation negative: a rogue shard presents corrupted evidence;
   it must never join, never hold a job, and the work must complete on
   the honest shard alone. *)
let test_rogue_node_starved () =
  let o = Fl.run { small_config with Fl.rogue = [ 1 ] } in
  let rogue = List.nth o.Fl.r_shards 1 in
  let honest = List.nth o.Fl.r_shards 0 in
  check_bool "rogue never joined" false rogue.Fl.so_joined;
  check_int "rogue installed nothing" 0 rogue.Fl.so_report.W.rp_installs;
  check_int "rogue ran nothing" 0 rogue.Fl.so_report.W.rp_exits;
  check_bool "honest shard did the work" true
    (honest.Fl.so_report.W.rp_installs > 0);
  check_int "rejection counted" 1
    (List.assoc "fleet.attest.rejected" o.Fl.r_counters);
  check_int "one join" 1 (List.assoc "fleet.nodes.joined" o.Fl.r_counters);
  check_int "all jobs still completed" small_config.Fl.jobs
    (List.length o.Fl.r_completed);
  check_bool "clean despite the rogue" true o.Fl.r_clean

(* The quarantine negative: machine checks take shard 0 down mid-run.
   The shard must be evicted, and every job is either completed on a
   healthy shard or failed closed — nothing lost, nothing duplicated. *)
let test_quarantine_migration () =
  let spec = Result.get_ok (Spec.parse "mce:2") in
  let cfg =
    {
      Fl.default with
      Fl.shards = 3;
      jobs = 12;
      enclaves = 6;
      target = 3;
      faults = [ (0, spec) ];
    }
  in
  let o = Fl.run cfg in
  check_bool "every job accounted" true o.Fl.r_accounted;
  let completed = List.length o.Fl.r_completed in
  let failed = List.length o.Fl.r_failed_closed in
  check_int "partition covers the job set" cfg.Fl.jobs (completed + failed);
  let sorted_union =
    List.sort compare (o.Fl.r_completed @ List.map fst o.Fl.r_failed_closed)
  in
  check_bool "no duplicates, no gaps" true
    (sorted_union = List.init cfg.Fl.jobs (fun i -> i));
  check_bool "no findings even under fire" true (o.Fl.r_findings = 0);
  (* if the faults actually bit (the schedule is seeded, so they do),
     the shard was evicted and its in-flight jobs moved *)
  let sh0 = List.hd o.Fl.r_shards in
  check_bool "faulted shard evicted" true sh0.Fl.so_evicted;
  check_bool "migrations recorded" true
    (List.assoc "fleet.jobs.migrated" o.Fl.r_counters > 0);
  check_int "eviction counted" 1
    (List.assoc "fleet.nodes.evicted" o.Fl.r_counters)

(* ------------------------------------------------------------------ *)
(* Net-fault specs. *)

let netspec s =
  match Netfault.parse s with
  | Ok v -> v
  | Error e -> Alcotest.failf "netspec %S: %s" s e

let test_netspec_parse () =
  check_bool "empty string" true (Netfault.is_empty (netspec ""));
  check_bool "none" true (Netfault.is_empty (netspec "none"));
  check_bool "all preset armed" false (Netfault.is_empty (netspec "all"));
  check_bool "zero counts are empty" true
    (Netfault.is_empty (netspec "drop:0,dup:0"));
  check_bool "bare class means one" true (netspec "drop" = netspec "drop:1");
  (* to_string round-trips through parse *)
  List.iter
    (fun s ->
      let v = netspec s in
      check_bool
        (Printf.sprintf "%S round-trips" s)
        true
        (netspec (Netfault.to_string v) = v))
    [ "drop:3,dup:2"; "corrupt:2,delay:1,reorder:1"; "part@60+500"; "all";
      "none"; "drop:2,part@10+40,part@100+32" ];
  let rejected s =
    match Netfault.parse s with Error _ -> true | Ok _ -> false
  in
  check_bool "unknown class" true (rejected "bogus:2");
  check_bool "bad count" true (rejected "drop:x");
  check_bool "negative count" true (rejected "drop:-1");
  check_bool "window needs +LEN" true (rejected "part@5");
  check_bool "window needs numbers" true (rejected "part@a+b");
  check_bool "zero-length window" true (rejected "part@5+0");
  check_bool "only part takes a window" true (rejected "drop@5+10")

(* The link schedule is a pure function of (seed, spec, horizon): two
   links built alike fault identically, and the stats account for every
   send — after a flush each message was dropped, partition-dropped, or
   delivered (plus one extra delivery per dup). *)
let test_netfault_deterministic () =
  let run seed =
    let ch = Channel.create () in
    let clock = ref 0 in
    let l =
      Netfault.create ~chan:ch ~seed
        ~spec:(netspec "drop:2,dup:2,corrupt:2,delay:2,reorder:1,part@10+4")
        ~horizon:32
        ~clock:(fun () -> !clock)
        ~corrupt:(fun x -> x + 1000)
        ()
    in
    for i = 0 to 31 do
      clock := i;
      Netfault.send l i
    done;
    Netfault.flush l;
    let rec drain acc =
      match Channel.try_recv ch with
      | None -> List.rev acc
      | Some x -> drain (x :: acc)
    in
    (drain [], Netfault.stats l)
  in
  let d1, s1 = run 7L and d2, s2 = run 7L and d3, _ = run 8L in
  check_bool "same seed replays" true (d1 = d2 && s1 = s2);
  check_bool "different seed differs" true (d1 <> d3);
  check_int "every send offered" 32 s1.Netfault.sent;
  check_int "accounting identity"
    (s1.Netfault.sent - s1.Netfault.dropped - s1.Netfault.partition_dropped
   + s1.Netfault.duplicated)
    s1.Netfault.delivered;
  check_bool "explicit window fired" true (s1.Netfault.partition_dropped >= 1);
  (* out-of-band delivery ignores the spec entirely *)
  let ch = Channel.create () in
  let l =
    Netfault.create ~chan:ch ~seed:1L ~spec:(netspec "part@0+1000") ~horizon:8
      ~clock:(fun () -> 5)
      ~corrupt:Fun.id ()
  in
  Netfault.send l 1;
  Netfault.send_oob l 2;
  check_bool "in-band partitioned away" true (Channel.try_recv ch = Some 2);
  check_bool "nothing else" true (Channel.try_recv ch = None)

(* ------------------------------------------------------------------ *)
(* Sessions: the reliable transport, one endpoint pair in isolation. *)

let flip_tag fr =
  let flip s =
    String.mapi
      (fun i c -> if i = 0 then Char.chr (Char.code c lxor 1) else c)
      s
  in
  { fr with Session.fr_tag = flip fr.Session.fr_tag }

let session_pair () =
  let a =
    Session.create Session.cluster_config ~seed:11L ~role:Session.Cluster_end
      ~encode_tx:Fun.id ~encode_rx:Fun.id
  in
  let b =
    Session.create Session.node_config ~seed:22L ~role:Session.Node_end
      ~encode_tx:Fun.id ~encode_rx:Fun.id
  in
  Session.set_key a ~epoch:1 ~key:"shared-key";
  Session.set_key b ~epoch:1 ~key:"shared-key";
  (a, b)

let test_session_delivery () =
  let a, b = session_pair () in
  let f0 = Session.send a ~now:0 "x" and f1 = Session.send a ~now:0 "y" in
  check_bool "in-order delivery" true
    (Session.receive b ~now:0 f0 = Session.Delivered [ "x" ]);
  check_bool "next in order" true
    (Session.receive b ~now:1 f1 = Session.Delivered [ "y" ]);
  (* a retransmitted frame is acked, never re-delivered *)
  check_bool "duplicate flagged" true
    (Session.receive b ~now:2 f0 = Session.Duplicate);
  check_bool "dup wants a re-ack" true (Session.want_ack b);
  check_int "dup counted" 1 (Session.stats b).Session.dups_dropped;
  (* out-of-order frames are buffered, then released in sequence *)
  let f2 = Session.send a ~now:1 "c" and f3 = Session.send a ~now:1 "d" in
  check_bool "future frame buffered" true
    (Session.receive b ~now:3 f3 = Session.Delivered []);
  check_bool "gap fill releases both in order" true
    (Session.receive b ~now:4 f2 = Session.Delivered [ "c"; "d" ]);
  (* the ack travels back and clears the retransmit queue *)
  check_int "four unacked" 4 (Session.unacked a);
  let ack = Session.ack_frame b in
  check_bool "ack is payload-less" true (ack.Session.fr_payload = None);
  check_bool "ack verifies as heartbeat" true
    (Session.receive a ~now:5 ack = Session.Heartbeat);
  check_int "retransmit queue cleared" 0 (Session.unacked a)

let test_session_rejects () =
  let a, b = session_pair () in
  let f = Session.send a ~now:0 "x" in
  check_bool "flipped tag rejected" true
    (Session.receive b ~now:0 (flip_tag f) = Session.Bad_mac);
  check_bool "reflected frame rejected" true
    (* the sender's own frame bounced straight back: same key, wrong
       direction string in the MAC input *)
    (Session.receive a ~now:0 f = Session.Bad_mac);
  check_int "mac rejects counted" 1 (Session.stats b).Session.mac_rejects;
  (* epoch fencing: after a rekey, old-epoch frames are stale *)
  Session.set_key b ~epoch:2 ~key:"new-key";
  check_bool "old epoch stale" true
    (Session.receive b ~now:1 f = Session.Stale);
  check_int "stale counted" 1 (Session.stats b).Session.stale_rejects;
  check_bool "verify_only agrees" false (Session.verify_only b f);
  (* and a keyless endpoint delivers nothing *)
  let c =
    Session.create Session.node_config ~seed:3L ~role:Session.Node_end
      ~encode_tx:Fun.id ~encode_rx:Fun.id
  in
  check_bool "no key, no delivery" true
    (Session.receive c ~now:0 f = Session.No_key)

let test_session_retransmit () =
  let a, _ = session_pair () in
  ignore (Session.send a ~now:0 "x");
  check_bool "nothing due yet" true (Session.due a ~now:1 = []);
  let t = ref 0 and last = ref 0 and delays = ref [] in
  (* drive virtual time until the retry budget is spent; each due fire
     must back off further than the last *)
  while not (Session.exhausted a) && !t < 1_000_000 do
    t := !t + 1;
    match Session.due a ~now:!t with
    | [] -> ()
    | [ (_, delay) ] ->
        check_bool "deadline moved forward" true (!t > !last);
        last := !t;
        delays := delay :: !delays
    | _ -> Alcotest.fail "one frame outstanding, several due"
  done;
  check_bool "retry budget exhausts" true (Session.exhausted a);
  check_int "retransmits counted"
    (List.length !delays)
    (Session.stats a).Session.retransmits;
  let ds = List.rev !delays in
  check_bool "backoff grows then caps" true
    (List.length ds >= 3 && List.nth ds 0 < List.nth ds 2)

let test_session_heartbeat () =
  let a, b = session_pair () in
  check_bool "not due immediately" true
    (Session.heartbeat_due a ~now:0 = None);
  match Session.heartbeat_due a ~now:100 with
  | None -> Alcotest.fail "heartbeat never came due"
  | Some hb ->
      check_bool "payload-less" true (hb.Session.fr_payload = None);
      check_bool "peer verifies it" true
        (Session.receive b ~now:0 hb = Session.Heartbeat);
      check_int "heard at the hb's arrival" 0 (Session.last_heard b);
      check_int "heartbeats counted" 1 (Session.stats a).Session.heartbeats

(* ------------------------------------------------------------------ *)
(* Channel under contention: many senders, many receivers. Exactly-once
   across the fleet of receivers, and each sender's messages appear in
   send order within any single receiver's view (FIFO per source). *)

let test_channel_many_to_many () =
  let ch = Channel.create () in
  let senders = 4 and receivers = 3 and per = 400 in
  let total = senders * per in
  let claimed = Atomic.make 0 in
  let rxs =
    List.init receivers (fun _ ->
        Domain.spawn (fun () ->
            let rec loop acc =
              if Atomic.fetch_and_add claimed 1 < total then
                loop (Channel.recv ch :: acc)
              else List.rev acc
            in
            loop []))
  in
  let txs =
    List.init senders (fun s ->
        Domain.spawn (fun () ->
            for i = 0 to per - 1 do
              Channel.send ch (s, i)
            done))
  in
  List.iter Domain.join txs;
  let views = List.map Domain.join rxs in
  check_int "queue drained" 0 (Channel.length ch);
  let union = List.sort compare (List.concat views) in
  let expect =
    List.sort compare
      (List.concat_map
         (fun s -> List.init per (fun i -> (s, i)))
         (List.init senders Fun.id))
  in
  check_bool "exactly-once union across receivers" true (union = expect);
  List.iteri
    (fun r view ->
      for s = 0 to senders - 1 do
        let mine = List.filter_map
            (fun (s', i) -> if s' = s then Some i else None)
            view
        in
        check_bool
          (Printf.sprintf "receiver %d sees sender %d in order" r s)
          true
          (List.sort compare mine = mine)
      done)
    views

(* ------------------------------------------------------------------ *)
(* Config validation: every numeric field is checked before any domain
   spawns, so a bad flag is a usage error, never a wedged fleet. *)

let test_config_validation () =
  check_bool "baseline accepted" true (Fl.validate small_config = ());
  let rejects name cfg =
    match Fl.validate cfg with
    | () -> Alcotest.failf "%s: nonsense accepted" name
    | exception Invalid_argument _ -> ()
  in
  rejects "shards" { small_config with Fl.shards = 0 };
  rejects "cores" { small_config with Fl.cores = 0 };
  rejects "enclaves" { small_config with Fl.enclaves = -1 };
  rejects "jobs" { small_config with Fl.jobs = 0 };
  rejects "target" { small_config with Fl.target = 0 };
  rejects "fuel" { small_config with Fl.fuel = 0 };
  rejects "quantum" { small_config with Fl.quantum = -5 };
  rejects "batch_rounds" { small_config with Fl.batch_rounds = 0 };
  rejects "retry_budget" { small_config with Fl.retry_budget = -1 };
  rejects "check_every" { small_config with Fl.check_every = -1 };
  rejects "fault_horizon" { small_config with Fl.fault_horizon = 0 };
  rejects "net_horizon" { small_config with Fl.net_horizon = 0 }

(* The demo binary maps that to the 0/1/2 exit convention: 0 clean,
   1 dirty run (findings or unaccounted jobs — the state the rest of
   this file exists to make unreachable), 2 usage error. *)
let demo_exe =
  (* anchored to this binary, so the test passes whether dune runs it
     from the build sandbox or via `dune exec` from the root *)
  Filename.concat
    (Filename.dirname Sys.executable_name)
    "../bin/sanctorum_demo.exe"

let test_demo_exit_codes () =
  if not (Sys.file_exists demo_exe) then
    Alcotest.fail "demo binary missing (dune deps should have built it)";
  let run args =
    Sys.command
      (Printf.sprintf "%s fleet %s >/dev/null 2>&1" demo_exe args)
  in
  List.iter
    (fun (args, expect) ->
      check_int (Printf.sprintf "fleet %s" args) expect (run args))
    [
      ("--shards 1 --jobs 2 --target 1", 0);
      ("--shards 1 --jobs 2 --target 1 --net-faults drop:1,dup:1", 0);
      ("--net-faults bogus:3", 2);
      ("--net-faults drop:x", 2);
      ("--net-faults part@5", 2);
      ("--net-horizon 0", 2);
      ("--shards 0", 2);
      ("--jobs 0", 2);
      ("--target 0", 2);
      ("--retry-budget -1", 2);
      ("--no-such-flag", 2);
    ]

(* ------------------------------------------------------------------ *)
(* Duplicate delivery at the node: re-sending an already-executed batch
   frame must produce an ack and nothing else — the work never re-runs.
   This drives one node domain by hand, playing the cluster's half of
   the protocol over bare channels (the no-fault path). *)

let test_node_dup_idempotent () =
  let seed = "dup-idem/shard-0" in
  let ncfg =
    {
      Node.node_id = 0;
      seed;
      backend = Fl.default.Fl.backend;
      cores = 2;
      enclaves = 4;
      mix = Fl.default.Fl.mix;
      fuel = Fl.default.Fl.fuel;
      quantum = Fl.default.Fl.quantum;
      check_every = Fl.default.Fl.check_every;
      batch_rounds = 400;
      faults = None;
      fault_horizon = 200_000;
      rogue = false;
      net = Netfault.empty;
      net_horizon = 48;
    }
  in
  let inbox = Channel.create () and outbox = Channel.create () in
  let dom = Domain.spawn (fun () -> Node.run ncfg ~inbox ~outbox) in
  (* challenge, verify, derive the shared key — the cluster's join *)
  let drbg = C.Drbg.create ~seed:"dup-idem/cluster" in
  let secret, public = C.Dh.generate drbg in
  let pub_bytes = C.Dh.public_to_bytes public in
  let nonce = C.Drbg.random_bytes drbg 32 in
  Channel.send inbox
    (Node.Challenge
       { ch_epoch = 1; ch_nonce = nonce; ch_cluster_pub = pub_bytes });
  let key =
    match Channel.recv outbox with
    | Node.Joined { jd_epoch; jd_evidence; jd_node_pub; _ } ->
        check_int "joined at epoch 1" 1 jd_epoch;
        let root =
          C.Schnorr.public_key (Sanctorum.Boot.manufacturer_root ~seed)
        in
        let channel_binding = C.Sha3.sha3_256 (jd_node_pub ^ pub_bytes) in
        check_bool "evidence verifies" true
          (Sanctorum.Attestation.verify_evidence ~root
             ~expected_measurement:
               (Sanctorum.Image.measurement Node.agent_image)
             ~nonce ~channel_binding jd_evidence
          = Ok ());
        C.Dh.shared_key secret
          (Result.get_ok (C.Dh.public_of_bytes jd_node_pub))
    | _ -> Alcotest.fail "expected Joined"
  in
  let cs =
    Session.create Session.cluster_config ~seed:5L ~role:Session.Cluster_end
      ~encode_tx:Node.down_bytes ~encode_rx:Node.up_bytes
  in
  Session.set_key cs ~epoch:1 ~key;
  let batch =
    Node.Batch
      { gen = 0; jobs = [ { Node.js_jid = 0; js_seed = 42L; js_target = 1 } ] }
  in
  let fr = Session.send cs ~now:0 batch in
  Channel.send inbox (Node.Down fr);
  (* the node crunches, then reports exactly one Batch_done *)
  let rec await_done () =
    match Channel.recv outbox with
    | Node.Up f -> (
        match Session.receive cs ~now:1 f with
        | Session.Delivered [ Node.Batch_done { bd_gen; bd_completed; _ } ] ->
            check_int "our generation" 0 bd_gen;
            check_bool "our job completed" true (bd_completed = [ 0 ])
        | Session.Delivered [] | Session.Heartbeat | Session.Duplicate ->
            await_done ()
        | v ->
            Alcotest.failf "unexpected verdict on first reply: %s"
              (match v with
              | Session.Bad_mac -> "bad mac"
              | Session.Stale -> "stale"
              | Session.No_key -> "no key"
              | _ -> "?"))
    | _ -> Alcotest.fail "expected a session frame"
  in
  await_done ();
  (* ack it so the node stops retransmitting its result *)
  Channel.send inbox (Node.Down (Session.ack_frame cs));
  (* now re-deliver the very same batch frame *)
  Channel.send inbox (Node.Down fr);
  let rec await_ack_only () =
    match Channel.recv outbox with
    | Node.Up f -> (
        match Session.receive cs ~now:2 f with
        | Session.Heartbeat | Session.Duplicate -> ()
        | Session.Delivered [] -> await_ack_only ()
        | Session.Delivered _ ->
            Alcotest.fail "duplicate batch was re-executed"
        | _ -> Alcotest.fail "unexpected verdict on the dup's ack")
    | _ -> Alcotest.fail "expected a session frame"
  in
  await_ack_only ();
  Channel.send inbox Node.Shutdown;
  let rec await_bye () =
    match Channel.recv outbox with
    | Node.Bye { bye_report; bye_net; _ } ->
        (* the node saw the duplicate and dropped it at the session *)
        check_int "node deduped once" 1
          (List.assoc "net.dups_dropped" bye_net);
        check_int "node ran the job exactly once" 1 bye_report.W.rp_installs;
        check_bool "node drained" true bye_report.W.rp_reclaimed
    | _ -> await_bye ()
  in
  await_bye ();
  Domain.join dom

(* ------------------------------------------------------------------ *)
(* Pinned chaos scenarios. *)

(* Under the full preset — drop, dup, corrupt, delay, reorder, seeded
   partition — the transport absorbs everything: all jobs complete,
   corrupted traffic dies at the HMAC, and the catalog stays silent. *)
let test_chaos_all_clean () =
  let cfg =
    {
      Fl.default with
      Fl.shards = 2;
      jobs = 8;
      target = 2;
      net = netspec "all";
    }
  in
  let o = Fl.run cfg in
  check_bool "clean under full chaos" true o.Fl.r_clean;
  check_int "all jobs completed" 8 (List.length o.Fl.r_completed);
  check_bool "nothing failed closed" true (o.Fl.r_failed_closed = []);
  let c n = List.assoc n o.Fl.r_counters in
  check_bool "link faults actually fired" true
    (c "net.link.dropped" + c "net.link.duplicated" + c "net.link.corrupted"
     + c "net.link.delayed" + c "net.link.reordered"
     + c "net.link.partition_dropped"
    > 0);
  check_bool "every corruption was rejected, none trusted" true
    (c "net.link.corrupted"
    <= c "net.hmac_rejects" + c "fleet.attest.rejected"
       + c "net.stale_rejected");
  check_int "no findings" 0 o.Fl.r_findings

(* The partition drill, pinned: a 500-tick blackout after the fleet is
   up. Both nodes must be fenced (heartbeats dead past the suspicion
   deadline), their jobs migrated, and — once the partition heals —
   re-attested under a fresh epoch, finishing the work themselves. *)
let test_partition_evict_rejoin () =
  let cfg =
    {
      Fl.default with
      Fl.seed = "net1";
      Fl.shards = 2;
      enclaves = 2;
      jobs = 16;
      target = 8;
      net = netspec "part@60+500";
    }
  in
  let o = Fl.run cfg in
  check_bool "accounted" true o.Fl.r_accounted;
  check_bool "clean" true o.Fl.r_clean;
  check_int "all jobs completed despite the blackout" 16
    (List.length o.Fl.r_completed);
  let c n = List.assoc n o.Fl.r_counters in
  check_bool "partition actually bit" true
    (c "net.link.partition_dropped" > 0);
  check_bool "someone was fenced" true (c "fleet.nodes.evicted" >= 1);
  check_bool "someone rejoined" true (c "fleet.nodes.rejoined" >= 1);
  check_bool "rejoin rekeyed" true (c "net.rekeys" >= 1);
  check_bool "fenced jobs migrated" true (c "fleet.jobs.migrated" >= 1);
  let rejoined =
    List.filter (fun s -> s.Fl.so_rejoined) o.Fl.r_shards
  in
  check_bool "a rejoined shard exists" true (rejoined <> []);
  List.iter
    (fun s ->
      check_bool "rejoined shard is no longer evicted" false s.Fl.so_evicted;
      check_bool "rejoined under a later epoch" true (s.Fl.so_epoch >= 2))
    rejoined

(* The fleet-wide property, the reason the layer exists: for any
   (seed, policy, fault spec) the run terminates with every job in
   exactly one of {completed, failed-closed}, and either everything is
   clean or the failure was contained by eviction — never an
   unaccounted job, never a finding. *)
let prop_fleet_accounts_for_every_job =
  QCheck2.Test.make
    ~name:"fleet: any (seed, policy, faults, net) accounts for every job"
    ~count:6
    ~print:(fun (seed, policy, fault, net) ->
      Printf.sprintf "(%d, %s, %s, %s)" seed (Policy.name policy)
        (Option.value ~default:"none" fault)
        net)
    QCheck2.Gen.(
      quad (int_bound 1000) (oneofl Policy.all)
        (oneofl [ None; Some "mce:1"; Some "bitflip:3"; Some "mce:1,bitflip:2" ])
        (oneofl
           [
             "none";
             "drop:3,dup:2";
             "drop:2,dup:2,reorder:1,corrupt:2";
             "corrupt:3,delay:2";
             "all";
           ]))
    (fun (seed, policy, fault, net) ->
      let faults =
        match fault with
        | None -> []
        | Some s -> [ (1, Result.get_ok (Spec.parse s)) ]
      in
      let cfg =
        {
          small_config with
          Fl.seed = Printf.sprintf "prop-%d" seed;
          policy;
          faults;
          fault_horizon = 120_000;
          net = Result.get_ok (Netfault.parse net);
        }
      in
      let o = Fl.run cfg in
      if not o.Fl.r_accounted then QCheck2.Test.fail_report "job lost";
      if o.Fl.r_findings <> 0 then
        QCheck2.Test.fail_reportf "%d findings" o.Fl.r_findings;
      (* completed and failed-closed partition the job set exactly:
         nothing lost, and — dup, reorder, retransmit or not — nothing
         credited twice *)
      let union =
        List.sort compare
          (o.Fl.r_completed @ List.map fst o.Fl.r_failed_closed)
      in
      if union <> List.init cfg.Fl.jobs Fun.id then
        QCheck2.Test.fail_report "completed/failed sets are not a partition";
      (* every corrupted message died at an authenticity check *)
      let c n = List.assoc n o.Fl.r_counters in
      if
        c "net.link.corrupted" > 0
        && c "net.hmac_rejects" + c "fleet.attest.rejected"
           + c "net.stale_rejected"
           = 0
      then QCheck2.Test.fail_report "corrupted traffic was trusted";
      List.iter
        (fun (s : Fl.shard_outcome) ->
          if s.Fl.so_joined && not s.Fl.so_evicted then begin
            if not s.Fl.so_report.W.rp_reclaimed then
              QCheck2.Test.fail_reportf "shard %d leaked" s.Fl.so_node;
            if not s.Fl.so_report.W.rp_msgs_accounted then
              QCheck2.Test.fail_reportf "shard %d mail unaccounted"
                s.Fl.so_node
          end)
        o.Fl.r_shards;
      true)

let suite =
  ( "fleet",
    [
      Alcotest.test_case "channel: fifo and try_recv" `Quick test_channel_fifo;
      Alcotest.test_case "channel: cross-domain echo" `Quick
        test_channel_cross_domain;
      Alcotest.test_case "channel: many senders, many receivers" `Quick
        test_channel_many_to_many;
      Alcotest.test_case "netspec: parse, round-trip, reject" `Quick
        test_netspec_parse;
      Alcotest.test_case "netfault: schedule replays from its seed" `Quick
        test_netfault_deterministic;
      Alcotest.test_case "session: exactly-once, in-order delivery" `Quick
        test_session_delivery;
      Alcotest.test_case "session: mac, reflection, epoch fencing" `Quick
        test_session_rejects;
      Alcotest.test_case "session: bounded backoff retransmit" `Quick
        test_session_retransmit;
      Alcotest.test_case "session: heartbeats feed the detector" `Quick
        test_session_heartbeat;
      Alcotest.test_case "config: every numeric field validated" `Quick
        test_config_validation;
      Alcotest.test_case "demo: fleet exit-code convention" `Slow
        test_demo_exit_codes;
      Alcotest.test_case "node: redelivered batch acked, not re-run" `Slow
        test_node_dup_idempotent;
      Alcotest.test_case "chaos: full fault preset stays clean" `Slow
        test_chaos_all_clean;
      Alcotest.test_case "chaos: partition, fence, rejoin, rekey" `Slow
        test_partition_evict_rejoin;
      Alcotest.test_case "policy: round-robin cycles and skips" `Quick
        test_policy_round_robin;
      Alcotest.test_case "policy: least-loaded avoids hot nodes" `Quick
        test_policy_least_loaded;
      Alcotest.test_case "policy: affinity homes are sticky" `Quick
        test_policy_affinity_deterministic;
      Alcotest.test_case "cluster: clean run completes every job" `Slow
        test_clean_run;
      Alcotest.test_case "cluster: shard reports replay byte-identically"
        `Slow test_shard_determinism;
      Alcotest.test_case "attestation: rogue node never receives a job" `Slow
        test_rogue_node_starved;
      Alcotest.test_case "quarantine: evicted shard's jobs land elsewhere"
        `Slow test_quarantine_migration;
      QCheck_alcotest.to_alcotest prop_fleet_accounts_for_every_job;
    ] )
