(* The bounded model checker (DESIGN.md exhaustive-checking section):
   exploration must be deterministic, clean on the real monitor, able
   to find every seeded fault at small depth, and its minimized
   counterexamples must actually replay. The last test is the
   regression for the transaction-guarantee bug the checker itself
   found: a rejected [allocate_page_table]/[load_page] used to leak a
   page from the enclave's free list. *)
module S = Sanctorum.Sm
module M = Sanctorum_analysis.Modelcheck
module R = Sanctorum_analysis.Report

let cfg ?(backend = M.Sanctum) ?(depth = 2) ?(cores = 1) ?(units = 2)
    ?(diff = false) ?(warm = true) ?inject () =
  { M.default_config with backend; depth; cores; units; diff; warm; inject }

let finding_ids s = List.map M.finding_id s.M.s_findings

(* ------------------------------------------------------------------ *)
(* Honest monitor: exploration is clean, substantial, and identical
   across backends. *)

let test_clean backend () =
  let s = M.explore (cfg ~backend ()) in
  Alcotest.(check int) "no findings" 0 s.M.s_findings_total;
  Alcotest.(check bool) "not truncated" false s.M.s_truncated;
  if s.M.s_states < 30 then
    Alcotest.failf "depth-2 warm exploration too small: %d states" s.M.s_states

let test_cross_backend_equal () =
  let a = M.explore (cfg ~backend:M.Sanctum ()) in
  let b = M.explore (cfg ~backend:M.Keystone ()) in
  Alcotest.(check int) "same state count" a.M.s_states b.M.s_states;
  Alcotest.(check int) "same edge count" a.M.s_edges b.M.s_edges;
  Alcotest.(check int) "same dedup hits" a.M.s_dedup_hits b.M.s_dedup_hits

let test_diff_clean () =
  let s = M.explore (cfg ~diff:true ()) in
  Alcotest.(check int) "no cross-backend divergence" 0 s.M.s_findings_total

(* Same configuration twice must reproduce the identical exploration,
   digest included — findings would not be replayable otherwise. *)
let prop_deterministic =
  QCheck.Test.make ~count:6 ~name:"explore is deterministic"
    QCheck.(
      quad (bool : bool arbitrary) (1 -- 2) (1 -- 2) (bool : bool arbitrary))
    (fun (sanctum, cores, units, warm) ->
      let backend = if sanctum then M.Sanctum else M.Keystone in
      let c = cfg ~backend ~depth:1 ~cores ~units ~warm () in
      let a = M.explore c and b = M.explore c in
      a.M.s_state_digest = b.M.s_state_digest
      && a.M.s_states = b.M.s_states
      && a.M.s_edges = b.M.s_edges)

(* ------------------------------------------------------------------ *)
(* Seeded faults: each injector, armed as an [Inject] action, must be
   found at small depth, minimized, and the minimized path must
   reproduce the finding under [replay]. *)

let find_and_replay ~depth fault expect_id () =
  let c = cfg ~depth ~inject:fault () in
  let s = M.explore c in
  if s.M.s_findings = [] then
    Alcotest.failf "fault %s: no findings at depth %d"
      (M.fault_to_string fault) depth;
  let f =
    match
      List.find_opt (fun f -> M.finding_id f = expect_id) s.M.s_findings
    with
    | Some f -> f
    | None ->
        Alcotest.failf "fault %s: expected %s among [%s]"
          (M.fault_to_string fault) expect_id
          (String.concat "; " (finding_ids s))
  in
  let path = M.finding_path f in
  if List.length path > depth then
    Alcotest.failf "fault %s: minimized path longer than depth (%d > %d)"
      (M.fault_to_string fault) (List.length path) depth;
  (* the minimized sequence must survive serialization and reproduce
     the catalog violation when replayed from scratch *)
  (match M.path_of_string (M.path_to_string path) with
  | Ok p when p = path -> ()
  | Ok _ -> Alcotest.fail "path round-trip changed the sequence"
  | Error e -> Alcotest.failf "path round-trip failed: %s" e);
  match M.finding_id f with
  | "diff.verdict" | "api.transactional" -> ()
  | id ->
      let _, violations = M.replay c path in
      let seen = List.sort_uniq compare (List.map (fun v -> v.R.id) violations) in
      if not (List.mem id seen) then
        Alcotest.failf "replay of %s lost the violation (saw [%s])"
          (M.path_to_string path) (String.concat "; " seen)

(* ------------------------------------------------------------------ *)
(* Replay and serialization. *)

let test_replay_verdicts () =
  (* warm start: enclave 0 is initialized with thread 0 loaded, so
     enter/aex/read-aex is an accepted sequence *)
  let path = [ M.Enter (0, 0, 0); M.Aex 0; M.Read_aex (0, 0) ] in
  let steps, violations = M.replay (cfg ()) path in
  Alcotest.(check (list string))
    "all accepted" [ "ok"; "ok"; "ok" ]
    (List.map (fun st -> st.M.r_verdict) steps);
  Alcotest.(check int) "catalog silent" 0 (List.length violations)

let test_replay_rejects_garbage () =
  match M.path_of_string "enter:0:0:0,bogus:1" with
  | Ok _ -> Alcotest.fail "parsed a bogus action token"
  | Error _ -> ()

let sample_actions =
  [
    M.Create 1;
    M.Alloc_pt (0, 2);
    M.Load_page (1, 3);
    M.Map_shared 0;
    M.Load_thread (1, 1);
    M.Init 1;
    M.Delete 0;
    M.Block_mem 1;
    M.Clean_mem 0;
    M.Grant_mem (1, 0);
    M.Grant_mem_os 1;
    M.Accept_mem (0, 1);
    M.Assign (1, 0);
    M.Accept_thread (0, 1);
    M.Release_thread (1, 0);
    M.Unassign 1;
    M.Delete_thread 0;
    M.Enter (0, 1, 1);
    M.Exit_enclave (1, 0);
    M.Aex 1;
    M.Read_aex (0, 0);
    M.Accept_mail (0, M.S_os);
    M.Accept_mail (1, M.S_enclave 0);
    M.Send_mail (M.S_os, 1);
    M.Send_mail (M.S_enclave 1, 0);
    M.Get_mail (0, M.S_enclave 1);
    M.Inject (M.Corrupt_owner_map 1);
    M.Inject (M.Corrupt_lifecycle 0);
    M.Inject (M.Corrupt_thread (1, 0));
    M.Inject M.Corrupt_meta;
  ]

let prop_path_roundtrip =
  QCheck.Test.make ~count:100 ~name:"path serialization round-trips"
    QCheck.(list_of_size Gen.(1 -- 8) (oneofl sample_actions))
    (fun path -> M.path_of_string (M.path_to_string path) = Ok path)

(* ------------------------------------------------------------------ *)
(* Regression: rejected page allocations must not mutate the enclave.
   Before the fix, [allocate_page_table] and [load_page] popped a page
   off [free_pages] before validating the destination PTE slot, so a
   rejected call leaked one page per attempt — found by the model
   checker as [api.transactional] on the path
   create,blockmem,cleanmem,grantmem,allocpt(level 0). *)

let free_pages sm ~eid =
  match S.enclave_info sm ~eid with
  | Some i -> i.S.i_free_pages
  | None -> Alcotest.fail "enclave_info: no such enclave"

let tb_mem_bytes = 1 lsl 20

let provisioned_enclave backend =
  let tb = Sanctorum_os.Testbed.create ~backend ~mem_bytes:tb_mem_bytes () in
  let sm = tb.Sanctorum_os.Testbed.sm in
  let eid = S.metadata_base sm in
  let ok what = function
    | Ok v -> v
    | Error e ->
        Alcotest.failf "%s: %s" what (Sanctorum.Api_error.to_string e)
  in
  ok "create"
    (S.create_enclave sm ~caller:Os ~eid ~evbase:0x40000 ~evsize:0x4000 ());
  let rid = S.memory_units sm - 1 in
  ok "block" (S.block_resource sm ~caller:Os Memory_resource ~rid);
  ok "clean" (S.clean_resource sm ~caller:Os Memory_resource ~rid);
  ok "grant"
    (S.grant_resource sm ~caller:Os Memory_resource ~rid ~to_:(To_enclave eid));
  (sm, eid)

let test_rejected_allocpt_leaks_nothing backend () =
  let sm, eid = provisioned_enclave backend in
  let before = free_pages sm ~eid in
  Alcotest.(check bool) "enclave has pages" true (before <> []);
  (* level 0 with no root table: must be rejected without side effects *)
  (match S.allocate_page_table sm ~caller:Os ~eid ~vaddr:0x40000 ~level:0 with
  | Ok () -> Alcotest.fail "allocate_page_table accepted with no root table"
  | Error _ -> ());
  Alcotest.(check (list int))
    "free list untouched by rejected allocate_page_table" before
    (free_pages sm ~eid)

let test_rejected_load_page_leaks_nothing backend () =
  let sm, eid = provisioned_enclave backend in
  let before = free_pages sm ~eid in
  (* source must be untrusted memory or the call is rejected before it
     reaches the allocator; mid-RAM is OS-owned and was not granted *)
  let src_paddr = tb_mem_bytes / 2 in
  (match
     S.load_page sm ~caller:Os ~eid ~vaddr:0x40000 ~src_paddr ~r:true ~w:true
       ~x:false
   with
  | Ok () -> Alcotest.fail "load_page accepted with no page tables"
  | Error _ -> ());
  Alcotest.(check (list int))
    "free list untouched by rejected load_page" before (free_pages sm ~eid)

let suite =
  ( "modelcheck",
    [
      Alcotest.test_case "clean exploration (sanctum)" `Quick
        (test_clean M.Sanctum);
      Alcotest.test_case "clean exploration (keystone)" `Quick
        (test_clean M.Keystone);
      Alcotest.test_case "backends explore the same space" `Quick
        test_cross_backend_equal;
      Alcotest.test_case "differential mode finds no divergence" `Quick
        test_diff_clean;
      QCheck_alcotest.to_alcotest prop_deterministic;
      Alcotest.test_case "finds corrupted owner map" `Quick
        (find_and_replay ~depth:1 (M.Corrupt_owner_map 0) "own.exclusive");
      Alcotest.test_case "finds corrupted lifecycle" `Quick
        (find_and_replay ~depth:1 (M.Corrupt_lifecycle 0) "enclave.lifecycle");
      Alcotest.test_case "finds corrupted thread phase" `Quick
        (find_and_replay ~depth:1 (M.Corrupt_thread (0, 0)) "thread.lifecycle");
      Alcotest.test_case "finds corrupted metadata slots" `Quick
        (find_and_replay ~depth:1 M.Corrupt_meta "meta.slots");
      Alcotest.test_case "replay reports per-step verdicts" `Quick
        test_replay_verdicts;
      Alcotest.test_case "replay rejects malformed paths" `Quick
        test_replay_rejects_garbage;
      QCheck_alcotest.to_alcotest prop_path_roundtrip;
      Alcotest.test_case "rejected allocate_page_table leaks no page (sanctum)"
        `Quick
        (test_rejected_allocpt_leaks_nothing Sanctorum_os.Testbed.Sanctum_backend);
      Alcotest.test_case "rejected allocate_page_table leaks no page (keystone)"
        `Quick
        (test_rejected_allocpt_leaks_nothing
           Sanctorum_os.Testbed.Keystone_backend);
      Alcotest.test_case "rejected load_page leaks no page (sanctum)" `Quick
        (test_rejected_load_page_leaks_nothing
           Sanctorum_os.Testbed.Sanctum_backend);
      Alcotest.test_case "rejected load_page leaks no page (keystone)" `Quick
        (test_rejected_load_page_leaks_nothing
           Sanctorum_os.Testbed.Keystone_backend);
    ] )
