(* The workload engine (DESIGN.md §8): the closed loop must stay clean
   — zero analysis findings, full resource reclamation — for any (seed,
   mix), must be deterministic in its architectural outcomes, and the
   scheduler must honor its queue discipline. Also pins the satellite
   fix of this PR's sweep: every aex_state clear goes through the
   locked [clear_aex_state] helper, so the delete path's clear is
   visible to (and clean under) the lock-discipline analyzer. *)
module Hw = Sanctorum_hw
module S = Sanctorum.Sm
module Tel = Sanctorum_telemetry
module An = Sanctorum_analysis
module W = Sanctorum_workload.Workload
open Sanctorum_os

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let small_config ~seed ~mix =
  {
    W.seed;
    backend = Testbed.Keystone_backend;
    cores = 2;
    enclaves = 4;
    rounds = 10;
    mix;
    (* the quantum must at least cover an enclave's cold-start page
       walks or no entry ever completes *)
    fuel = 1200;
    quantum = 300;
    check_every = 3;
  }

(* Any (seed, mix): no findings, nothing dropped, everything given
   back. This is the reclamation property the workload engine exists
   to enforce at scale. *)
let prop_clean_and_reclaimed =
  QCheck2.Test.make ~name:"workload: any (seed, mix) ends clean and reclaimed"
    ~count:12
    ~print:(fun (s, m) -> Printf.sprintf "(%d, %s)" s (W.mix_name m))
    QCheck2.Gen.(pair (int_bound 1000) (oneofl W.all_mixes))
    (fun (seed, mix) ->
      let r = W.run (small_config ~seed:(string_of_int seed) ~mix) in
      if r.W.rp_findings <> [] then
        QCheck2.Test.fail_reportf "findings: %s"
          (Format.asprintf "%a" An.Report.pp_list r.W.rp_findings);
      if r.W.rp_trace_dropped <> 0 then
        QCheck2.Test.fail_reportf "dropped %d trace events" r.W.rp_trace_dropped;
      if not r.W.rp_drained then QCheck2.Test.fail_report "drain failed";
      if not r.W.rp_reclaimed then
        QCheck2.Test.fail_reportf "not reclaimed: free units %d -> %d"
          r.W.rp_free_units_boot r.W.rp_free_units_end;
      true)

(* The determinism contract: the architectural half of the report is a
   pure function of the config. *)
let test_deterministic () =
  let arch (r : W.report) =
    ( ( r.W.rp_installs,
        r.W.rp_reclaims,
        r.W.rp_exits,
        r.W.rp_preempts,
        r.W.rp_quanta ),
      ( r.W.rp_instret,
        r.W.rp_sim_cycles,
        r.W.rp_msgs_sent,
        r.W.rp_msgs_received,
        (r.W.rp_quantum_p50, r.W.rp_quantum_p90, r.W.rp_quantum_p99) ) )
  in
  List.iter
    (fun mix ->
      let cfg = small_config ~seed:"det" ~mix in
      let a = W.run cfg and b = W.run cfg in
      check_bool
        (Printf.sprintf "%s replays identically" (W.mix_name mix))
        true
        (arch a = arch b))
    W.all_mixes

(* The ipc mix must actually move mail, and receive counts can lag the
   sends only by the in-flight tail. *)
let test_ipc_delivers () =
  let r = W.run { (small_config ~seed:"mail" ~mix:W.Ipc) with W.rounds = 30 } in
  check_bool "messages delivered" true (r.W.rp_msgs_received > 0);
  check_bool "received <= sent" true
    (r.W.rp_msgs_received <= r.W.rp_msgs_sent)

(* The accounting regression this PR's sweep fixes: a deposit the peer
   never retrieved used to vanish from the ledger, so sent > received
   looked like message loss. The report now reads each mailbox's
   deposited/retrieved counters before reclaim and carries the gap as
   [rp_msgs_inflight]; sent must equal received + in-flight exactly,
   across seeds. *)
let test_ipc_accounting () =
  List.iter
    (fun seed ->
      let r =
        W.run { (small_config ~seed ~mix:W.Ipc) with W.rounds = 17 }
      in
      check_bool
        (Printf.sprintf "seed %S: ledger balances" seed)
        true r.W.rp_msgs_accounted;
      check_int
        (Printf.sprintf "seed %S: sent = received + in-flight" seed)
        r.W.rp_msgs_sent
        (r.W.rp_msgs_received + r.W.rp_msgs_inflight);
      check_bool
        (Printf.sprintf "seed %S: in-flight non-negative" seed)
        true
        (r.W.rp_msgs_inflight >= 0))
    [ "mail"; "mail-2"; "acct" ]

(* Scheduler queue discipline: Exited jobs leave the queue; re-enqueue
   puts them back; pending tracks both. *)
let test_scheduler_queue () =
  let tb = Testbed.create ~backend:Testbed.Keystone_backend () in
  let image =
    Sanctorum.Image.of_program ~evbase:0x10000
      Hw.Isa.[ Op_imm (Add, a7, zero, S.Ecall.exit_enclave); Ecall ]
  in
  let inst1 = Result.get_ok (Os.install_enclave tb.Testbed.os image) in
  let inst2 = Result.get_ok (Os.install_enclave tb.Testbed.os image) in
  let sched = Os.Scheduler.create tb.Testbed.os ~cores:[ 0 ] in
  Os.Scheduler.enqueue sched ~eid:inst1.Os.eid ~tid:(List.hd inst1.Os.tids);
  Os.Scheduler.enqueue sched ~eid:inst2.Os.eid ~tid:(List.hd inst2.Os.tids);
  check_int "both pending" 2 (Os.Scheduler.pending sched);
  let slots = Os.Scheduler.round sched ~fuel:1000 ~quantum:500 in
  check_int "one core, one slot" 1 (List.length slots);
  (match slots with
  | [ s ] ->
      check_bool "first job exited" true
        (s.Os.Scheduler.s_outcome = Ok Os.Exited);
      check_int "exited job left the queue" 1 (Os.Scheduler.pending sched)
  | _ -> Alcotest.fail "expected exactly one slot");
  let slots2 = Os.Scheduler.round sched ~fuel:1000 ~quantum:500 in
  check_int "second job ran" 1 (List.length slots2);
  check_int "queue empty" 0 (Os.Scheduler.pending sched);
  check_int "empty round dispatches nothing" 0
    (List.length (Os.Scheduler.round sched ~fuel:1000 ~quantum:500))

(* Satellite regression: clearing a thread's AEX dump on the
   delete/reclaim path must be a guarded write — taken under the
   thread lock and noted to the trace. Pre-fix, the delete path wrote
   [aex_state <- None] bare, so no [Guarded_write {field="aex_state"}]
   event appeared there and the clear was invisible to the
   lock-discipline analyzer. *)
let test_reclaim_clears_aex_under_lock () =
  let sink = Tel.Sink.create () in
  let tb = Testbed.create ~backend:Testbed.Keystone_backend ~sink () in
  let image =
    (* spin forever so the quantum expiry forces an AEX *)
    Sanctorum.Image.of_program ~evbase:0x10000 Hw.Isa.[ j 0 ]
  in
  let inst = Result.get_ok (Os.install_enclave tb.Testbed.os image) in
  let eid = inst.Os.eid and tid = List.hd inst.Os.tids in
  (match
     Os.run_enclave tb.Testbed.os ~eid ~tid ~core:0 ~fuel:1000 ~quantum:200 ()
   with
  | Ok Os.Preempted -> ()
  | Ok o ->
      Alcotest.failf "expected Preempted, got %s"
        (match o with
        | Os.Exited -> "Exited"
        | Os.Faulted _ -> "Faulted"
        | Os.Fuel_exhausted -> "Fuel_exhausted"
        | Os.Killed -> "Killed"
        | Os.Preempted -> assert false)
  | Error e -> Alcotest.failf "run: %s" (Sanctorum.Api_error.to_string e));
  check_bool "AEX dump pending" true
    (S.thread_has_aex_state tb.Testbed.sm ~tid = Ok true);
  (* Scope the trace to the reclaim path alone. *)
  Tel.Sink.clear sink;
  (match Os.reclaim_enclave tb.Testbed.os ~eid with
  | Ok () -> ()
  | Error e -> Alcotest.failf "reclaim: %s" (Sanctorum.Api_error.to_string e));
  let events = Tel.Sink.events sink in
  let aex_clears =
    List.filter
      (fun (e : Tel.Event.t) ->
        match e.Tel.Event.payload with
        | Tel.Event.Guarded_write { field = "aex_state"; _ } -> true
        | _ -> false)
      events
  in
  check_bool "reclaim notes the aex_state clear" true (aex_clears <> []);
  (match An.Lockcheck.check events with
  | [] -> ()
  | vs ->
      Alcotest.failf "lock discipline: %s"
        (Format.asprintf "%a" An.Report.pp_list vs));
  check_bool "enclave gone" true
    (not (List.mem eid (S.enclaves tb.Testbed.sm)))

let suite =
  ( "workload",
    [
      Alcotest.test_case "scheduler: queue discipline" `Quick
        test_scheduler_queue;
      Alcotest.test_case "determinism: identical replays" `Slow
        test_deterministic;
      Alcotest.test_case "ipc mix delivers mail" `Quick test_ipc_delivers;
      Alcotest.test_case "ipc accounting: sent = received + in-flight" `Quick
        test_ipc_accounting;
      Alcotest.test_case "reclaim clears AEX state under the thread lock"
        `Quick test_reclaim_clears_aex_under_lock;
      QCheck_alcotest.to_alcotest prop_clean_and_reclaimed;
    ] )
