module Util = Sanctorum_util

let check = Alcotest.(check string)
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_hex_roundtrip () =
  check "encode" "00ff10" (Util.Hex.encode "\x00\xff\x10");
  check "decode" "\x00\xff\x10" (Util.Hex.decode "00ff10");
  check "decode upper" "\xab\xcd" (Util.Hex.decode "ABCD");
  Alcotest.check_raises "odd length" (Invalid_argument "Hex.decode: odd length")
    (fun () -> ignore (Util.Hex.decode "abc"));
  Alcotest.check_raises "bad char"
    (Invalid_argument "Hex.decode: non-hex character") (fun () ->
      ignore (Util.Hex.decode "zz"))

let test_bits () =
  check_bool "pow2 1" true (Util.Bits.is_power_of_two 1);
  check_bool "pow2 4096" true (Util.Bits.is_power_of_two 4096);
  check_bool "pow2 12" false (Util.Bits.is_power_of_two 12);
  check_bool "pow2 0" false (Util.Bits.is_power_of_two 0);
  check_int "log2" 12 (Util.Bits.log2 4096);
  check_int "align_up" 8192 (Util.Bits.align_up 4097 4096);
  check_int "align_up exact" 4096 (Util.Bits.align_up 4096 4096);
  check_int "align_down" 4096 (Util.Bits.align_down 8191 4096);
  check_int "extract" 0b101 (Util.Bits.extract 0b10100 ~lo:2 ~width:3);
  check_int "sign_extend neg" (-1) (Util.Bits.sign_extend 0xfff ~width:12);
  check_int "sign_extend pos" 2047 (Util.Bits.sign_extend 0x7ff ~width:12);
  Alcotest.(check int64)
    "rotl64" 0x8000000000000000L
    (Util.Bits.rotl64 1L 63);
  Alcotest.(check int64) "rotl64 id" 0x123456789abcdef0L
    (Util.Bits.rotl64 0x123456789abcdef0L 0)

let test_bytesx () =
  check "xor" "\x03\x01" (Util.Bytesx.xor "\x01\x02" "\x02\x03");
  check_bool "cte eq" true (Util.Bytesx.constant_time_equal "abc" "abc");
  check_bool "cte neq" false (Util.Bytesx.constant_time_equal "abc" "abd");
  check_bool "cte len" false (Util.Bytesx.constant_time_equal "abc" "abcd");
  Alcotest.(check int64)
    "u64 roundtrip" 0x1122334455667788L
    (Util.Bytesx.get_u64_le (Util.Bytesx.of_int64_le 0x1122334455667788L) 0)

(* The shared splitmix64 stream is pinned by the reference vectors for
   seed 0 (Steele, Lea & Flood 2014; same values as the JDK's
   SplittableRandom and the xoshiro seeding recipe). Every replayable
   schedule in the tree — fault injection, workload decisions, fleet
   placement — derives from this stream, so changing it silently would
   invalidate every recorded seed. *)
let test_splitmix_kat () =
  let check64 = Alcotest.(check int64) in
  let r = Util.Splitmix.create ~seed:0L in
  check64 "kat[0]" 0xE220A8397B1DCDAFL (Util.Splitmix.next r);
  check64 "kat[1]" 0x6E789E6AA1B965F4L (Util.Splitmix.next r);
  check64 "kat[2]" 0x06C45D188009454FL (Util.Splitmix.next r);
  (* string seeding is deterministic, distinct per string, and feeds
     the same stream *)
  let a = Util.Splitmix.of_string "fleet/shard-0" in
  let a' = Util.Splitmix.of_string "fleet/shard-0" in
  let b = Util.Splitmix.of_string "fleet/shard-1" in
  let na = Util.Splitmix.next a in
  check64 "of_string replays" na (Util.Splitmix.next a');
  check_bool "of_string separates" true (na <> Util.Splitmix.next b);
  (* a copy forks an independent stream from the same state *)
  let c = Util.Splitmix.copy a in
  check64 "copy continues" (Util.Splitmix.next a) (Util.Splitmix.next c)

let test_splitmix_int () =
  let r = Util.Splitmix.create ~seed:42L in
  for _ = 1 to 1000 do
    let v = Util.Splitmix.int r ~bound:7 in
    if v < 0 || v >= 7 then Alcotest.failf "int out of range: %d" v
  done;
  let r = Util.Splitmix.create ~seed:1L in
  check_int "bound 1 is constant" 0 (Util.Splitmix.int r ~bound:1);
  check_bool "bound must be positive"
    true
    (match Util.Splitmix.int r ~bound:0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let qcheck_hex_roundtrip =
  QCheck2.Test.make ~name:"hex roundtrip" ~count:200 QCheck2.Gen.string
    (fun s -> Util.Hex.decode (Util.Hex.encode s) = s)

let suite =
  ( "util",
    [
      Alcotest.test_case "hex roundtrip" `Quick test_hex_roundtrip;
      Alcotest.test_case "bit helpers" `Quick test_bits;
      Alcotest.test_case "byte helpers" `Quick test_bytesx;
      Alcotest.test_case "splitmix64 known answers" `Quick test_splitmix_kat;
      Alcotest.test_case "splitmix64 bounded draw" `Quick test_splitmix_int;
      QCheck_alcotest.to_alcotest qcheck_hex_roundtrip;
    ] )
