(* A command-line driver for the whole stack:

     sanctorum_demo boot     [--backend sanctum|keystone]
     sanctorum_demo run      [--backend ...] [--count N] [--quantum Q]
     sanctorum_demo attest   [--backend ...]
     sanctorum_demo probe    [--backend ...]
     sanctorum_demo leak     [--backend ...] [--secret S]

   Every command also takes the telemetry flags
   [--trace out.json] [--trace-jsonl out.jsonl] [--metrics] [--audit];
   with no subcommand, [run] is implied, so
   [sanctorum_demo --trace t.json] traces the counting-enclave demo.
*)
module Hw = Sanctorum_hw
module S = Sanctorum.Sm
module Tel = Sanctorum_telemetry
open Sanctorum_os

type tel_opts = {
  trace : string option;  (* Chrome trace_event JSON *)
  trace_jsonl : string option;
  metrics : bool;
  audit : bool;
}

let write_file file contents =
  match open_out file with
  | oc ->
      output_string oc contents;
      close_out oc
  | exception Sys_error msg ->
      Printf.eprintf "sanctorum_demo: cannot write trace: %s\n" msg;
      exit 1

(* Run [f] with an optional sink; afterwards write/print whatever the
   flags asked for. *)
let with_telemetry opts f =
  let off =
    opts.trace = None && opts.trace_jsonl = None
    && (not opts.metrics) && not opts.audit
  in
  if off then f None
  else begin
    let metrics = Tel.Metrics.create () in
    let sink = Tel.Sink.create ~metrics () in
    f (Some sink);
    let events = Tel.Sink.events sink in
    (match opts.trace with
    | Some file ->
        write_file file (Tel.Export.chrome_trace ~metrics events);
        Printf.printf "trace: %d events -> %s (chrome://tracing / Perfetto)\n"
          (List.length events) file
    | None -> ());
    (match opts.trace_jsonl with
    | Some file ->
        write_file file (Tel.Export.jsonl events);
        Printf.printf "trace: %d events -> %s (JSON lines)\n"
          (List.length events) file
    | None -> ());
    if Tel.Sink.dropped sink > 0 then
      Printf.printf "trace: ring overflowed; oldest %d events dropped\n"
        (Tel.Sink.dropped sink);
    if opts.metrics then Tel.Export.summary ~events Format.std_formatter metrics;
    if opts.audit then
      Format.printf "%a" Tel.Audit.pp (Tel.Audit.of_events events)
  end

let hex8 s = Sanctorum_util.Hex.encode (String.sub s 0 8)

let backend_conv =
  Cmdliner.Arg.enum
    [ ("sanctum", Testbed.Sanctum_backend); ("keystone", Testbed.Keystone_backend) ]

let backend_arg =
  Cmdliner.Arg.(
    value
    & opt backend_conv Testbed.Sanctum_backend
    & info [ "backend"; "b" ] ~docv:"BACKEND"
        ~doc:"Isolation backend: $(b,sanctum) or $(b,keystone).")

let exit_prog = Hw.Isa.[ Op_imm (Add, a7, zero, S.Ecall.exit_enclave); Ecall ]

let cmd_boot tel backend =
  with_telemetry tel @@ fun sink ->
  let tb = Testbed.create ~backend ?sink () in
  let sm = tb.Testbed.sm in
  Printf.printf "platform        : %s\n" tb.Testbed.platform.Sanctorum_platform.Platform.name;
  Printf.printf "cores           : %d\n" (Hw.Machine.core_count tb.Testbed.machine);
  Printf.printf "memory          : %d MiB, %d units of %d KiB\n"
    (Hw.Phys_mem.size (Hw.Machine.mem tb.Testbed.machine) / 1024 / 1024)
    (S.memory_units sm)
    (S.memory_unit_bytes sm / 1024);
  Printf.printf "LLC partitioned : %b\n"
    tb.Testbed.platform.Sanctorum_platform.Platform.llc_partitioned;
  Printf.printf "SM measurement  : %s…\n" (hex8 (S.get_field sm S.Field_sm_measurement));
  Printf.printf "SM public key   : %s…\n" (hex8 (S.get_field sm S.Field_public_key));
  Printf.printf "signing enclave : %s… (expected measurement)\n"
    (hex8 (S.get_field sm S.Field_signing_measurement));
  Printf.printf "certificates    : %d bytes\n"
    (String.length (S.get_field sm S.Field_certificates))

let cmd_run tel backend count quantum =
  with_telemetry tel @@ fun sink ->
  let tb = Testbed.create ~backend ?sink () in
  let evbase = 0x10000 in
  let counter = evbase + 4096 in
  let body =
    Hw.Isa.(
      li t0 counter
      @ [ Load (Ld, t1, t0, 0) ]
      @ li t2 count
      @ [
          Branch (Bge, t1, t2, 16);
          Op_imm (Add, t1, t1, 1);
          Store (Sd, t1, t0, 0);
          Jal (zero, -12);
        ]
      @ exit_prog)
  in
  let image = Sanctorum.Image.of_program ~evbase body in
  match Os.install_enclave tb.Testbed.os image with
  | Error e -> Printf.printf "install failed: %s\n" (Sanctorum.Api_error.to_string e)
  | Ok inst ->
      let eid = inst.Os.eid and tid = List.hd inst.Os.tids in
      Printf.printf "enclave 0x%x measuring %s… counting to %d (quantum %d)\n"
        eid
        (hex8 (Result.get_ok (S.enclave_measurement tb.Testbed.sm ~eid)))
        count quantum;
      let entries = ref 0 and finished = ref false in
      while (not !finished) && !entries < 100000 do
        incr entries;
        match
          Os.run_enclave tb.Testbed.os ~eid ~tid ~core:0 ~fuel:1000000 ~quantum ()
        with
        | Ok Os.Exited -> finished := true
        | Ok Os.Preempted -> ()
        | Ok _ | Error _ -> finished := true
      done;
      let paddrs = Sanctorum_attack.Malicious_os.enclave_paddrs tb.Testbed.os ~eid in
      let data =
        List.nth paddrs (List.length (Sanctorum.Image.required_page_tables image) + 1)
      in
      Printf.printf "finished after %d entries (%d AEX); counted %Ld\n" !entries
        (!entries - 1)
        (Hw.Phys_mem.read_u64 (Hw.Machine.mem tb.Testbed.machine) data)

let cmd_attest tel backend =
  with_telemetry tel @@ fun sink ->
  let tb = Testbed.create ~backend ?sink () in
  match Testbed.install_signing_enclave tb with
  | Error e -> Printf.printf "signing enclave: %s\n" (Sanctorum.Api_error.to_string e)
  | Ok es ->
      let target = Sanctorum.Image.of_program ~evbase:0x30000 exit_prog in
      (match Os.install_enclave tb.Testbed.os target with
      | Error e -> Printf.printf "target: %s\n" (Sanctorum.Api_error.to_string e)
      | Ok t1 ->
          let session =
            Sanctorum.Attestation.run_remote_attestation tb.Testbed.sm
              ~rng:tb.Testbed.rng ~eid:t1.Os.eid ~es_eid:es.Os.eid
              ~expected_measurement:(Sanctorum.Image.measurement target)
          in
          (match session.Sanctorum.Attestation.verdict with
          | Ok () -> Printf.printf "remote attestation: VERIFIED\n"
          | Error m -> Printf.printf "remote attestation: REJECTED (%s)\n" m);
          Printf.printf "session keys agree: %b\n"
            (session.Sanctorum.Attestation.session_key_verifier
            = session.Sanctorum.Attestation.session_key_enclave))

let cmd_probe tel backend =
  with_telemetry tel @@ fun sink ->
  let tb = Testbed.create ~backend ?sink () in
  let image = Sanctorum.Image.of_program ~evbase:0x10000 exit_prog in
  match Os.install_enclave tb.Testbed.os image with
  | Error e -> Printf.printf "install: %s\n" (Sanctorum.Api_error.to_string e)
  | Ok inst ->
      let paddr =
        List.hd (Sanctorum_attack.Malicious_os.enclave_paddrs tb.Testbed.os ~eid:inst.Os.eid)
      in
      let show label result =
        Printf.printf "  %-28s %s\n" label
          (match result with `Denied -> "denied" | `Allowed -> "ALLOWED (bug!)")
      in
      Printf.printf "malicious-OS probes against enclave memory at 0x%x:\n" paddr;
      show "load (ISA)"
        (match Sanctorum_attack.Malicious_os.os_load tb.Testbed.os ~core:1 ~paddr with
        | Sanctorum_attack.Malicious_os.Denied -> `Denied
        | Sanctorum_attack.Malicious_os.Leaked _ -> `Allowed);
      show "store (ISA)"
        (match
           Sanctorum_attack.Malicious_os.os_store tb.Testbed.os ~core:1 ~paddr
             ~value:1L
         with
        | `Denied -> `Denied
        | `Stored -> `Allowed);
      show "execute (ISA)"
        (match Sanctorum_attack.Malicious_os.os_execute tb.Testbed.os ~core:1 ~paddr with
        | `Denied -> `Denied
        | `Executed -> `Allowed);
      show "DMA read"
        (match Sanctorum_attack.Malicious_os.dma_read tb.Testbed.os ~paddr ~len:8 with
        | `Denied -> `Denied
        | `Leaked _ -> `Allowed);
      show "DMA write"
        (match Sanctorum_attack.Malicious_os.dma_write tb.Testbed.os ~paddr ~data:"x" with
        | `Denied -> `Denied
        | `Stored -> `Allowed)

let cmd_leak tel backend secret =
  with_telemetry tel @@ fun sink ->
  let tb =
    Testbed.create ~backend ~l2:Sanctorum_attack.Cache_probe.recommended_l2
      ?sink ()
  in
  match Sanctorum_attack.Cache_probe.run tb ~secret () with
  | Error m -> Printf.printf "error: %s\n" m
  | Ok o ->
      Format.printf "%a@." Sanctorum_attack.Cache_probe.pp_outcome o;
      Printf.printf "%s\n"
        (if o.Sanctorum_attack.Cache_probe.leaked then
           "the attacker recovered the enclave's secret"
         else "no signal: the LLC partition holds")

open Cmdliner

let tel_term =
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record a full event trace and write it to $(docv) in Chrome \
             trace_event format (open in chrome://tracing or Perfetto).")
  in
  let trace_jsonl =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-jsonl" ] ~docv:"FILE"
          ~doc:"Write the event trace to $(docv) as JSON lines.")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "Print the metrics summary (cache/TLB hit rates, per-API call \
             counts, latency histogram) after the command.")
  in
  let audit =
    Arg.(
      value & flag
      & info [ "audit" ]
          ~doc:"Print the SM audit log: every API decision, accepted or \
                rejected.")
  in
  let mk trace trace_jsonl metrics audit = { trace; trace_jsonl; metrics; audit } in
  Term.(const mk $ trace $ trace_jsonl $ metrics $ audit)

let boot_cmd =
  Cmd.v (Cmd.info "boot" ~doc:"Boot the stack and print the monitor's identity.")
    Term.(const cmd_boot $ tel_term $ backend_arg)

let run_term =
  let count =
    Arg.(value & opt int 5000 & info [ "count"; "n" ] ~doc:"Loop iterations.")
  in
  let quantum =
    Arg.(value & opt int 2000 & info [ "quantum"; "q" ] ~doc:"Preemption quantum (cycles).")
  in
  Term.(const cmd_run $ tel_term $ backend_arg $ count $ quantum)

let run_cmd =
  Cmd.v
    (Cmd.info "run" ~doc:"Run a preemptible counting enclave to completion.")
    run_term

let attest_cmd =
  Cmd.v (Cmd.info "attest" ~doc:"Full remote attestation (paper Fig. 7).")
    Term.(const cmd_attest $ tel_term $ backend_arg)

let probe_cmd =
  Cmd.v (Cmd.info "probe" ~doc:"Malicious-OS probes against enclave memory.")
    Term.(const cmd_probe $ tel_term $ backend_arg)

let leak_cmd =
  let secret =
    Arg.(value & opt int 5 & info [ "secret"; "s" ] ~doc:"Victim secret, 0-7.")
  in
  Cmd.v (Cmd.info "leak" ~doc:"Prime+probe cache attack against a victim enclave.")
    Term.(const cmd_leak $ tel_term $ backend_arg $ secret)

let () =
  let doc = "drive the Sanctorum security-monitor reproduction" in
  exit
    (Cmd.eval
       (Cmd.group ~default:run_term
          (Cmd.info "sanctorum_demo" ~doc)
          [ boot_cmd; run_cmd; attest_cmd; probe_cmd; leak_cmd ]))
