(* A command-line driver for the whole stack:

     sanctorum_demo boot     [--backend sanctum|keystone]
     sanctorum_demo run      [--backend ...] [--count N] [--quantum Q]
     sanctorum_demo attest   [--backend ...]
     sanctorum_demo probe    [--backend ...]
     sanctorum_demo leak     [--backend ...] [--secret S]
     sanctorum_demo chaos    [--backend ...] [--seed N] [--faults SPEC]
                             [--rounds R]
     sanctorum_demo workload [--backend ...] [--seed S] [--cores N]
                             [--enclaves M] [--rounds R] [--mix MIX]

   Every command also takes the telemetry flags
   [--trace out.json] [--trace-jsonl out.jsonl] [--metrics] [--audit];
   with no subcommand, [run] is implied, so
   [sanctorum_demo --trace t.json] traces the counting-enclave demo.
*)
module Hw = Sanctorum_hw
module S = Sanctorum.Sm
module Tel = Sanctorum_telemetry
module An = Sanctorum_analysis
open Sanctorum_os

type tel_opts = {
  trace : string option;  (* Chrome trace_event JSON *)
  trace_jsonl : string option;
  metrics : bool;
  audit : bool;
  check_invariants : bool;
      (* run the Sanctorum_analysis snapshot pass after every API call *)
  slow_sim : bool;  (* disable the simulator fast path (reference mode) *)
}

let write_file file contents =
  match open_out file with
  | oc ->
      output_string oc contents;
      close_out oc
  | exception Sys_error msg ->
      Printf.eprintf "sanctorum_demo: cannot write trace: %s\n" msg;
      exit 1

(* Run [f] with an optional sink; afterwards write/print whatever the
   flags asked for. *)
let with_telemetry opts f =
  let off =
    opts.trace = None && opts.trace_jsonl = None
    && (not opts.metrics) && not opts.audit
  in
  if off then f None
  else begin
    let metrics = Tel.Metrics.create () in
    let sink = Tel.Sink.create ~metrics () in
    f (Some sink);
    let events = Tel.Sink.events sink in
    (match opts.trace with
    | Some file ->
        write_file file (Tel.Export.chrome_trace ~metrics events);
        Printf.printf "trace: %d events -> %s (chrome://tracing / Perfetto)\n"
          (List.length events) file
    | None -> ());
    (match opts.trace_jsonl with
    | Some file ->
        write_file file (Tel.Export.jsonl events);
        Printf.printf "trace: %d events -> %s (JSON lines)\n"
          (List.length events) file
    | None -> ());
    if Tel.Sink.dropped sink > 0 then
      Printf.printf "trace: ring overflowed; oldest %d events dropped\n"
        (Tel.Sink.dropped sink);
    if opts.metrics then Tel.Export.summary ~events Format.std_formatter metrics;
    if opts.audit then
      Format.printf "%a" Tel.Audit.pp (Tel.Audit.of_events events)
  end

(* --check-invariants: stop at the first API call after which the
   monitor's state breaks an invariant of the catalog. *)
let arm_checker opts sm =
  if opts.check_invariants then
    S.set_post_api_hook sm
      (Some
         (fun ~api ->
           match An.Checker.snapshot sm with
           | [] -> ()
           | vs ->
               Format.eprintf "invariant violation after %s:@.%a@." api
                 An.Report.pp_list vs;
               exit 1))

(* --slow-sim: force the reference stepped interpreter. Architectural
   results are identical either way (that equivalence is property-
   tested); the flag exists to demonstrate it from the CLI and to time
   the difference. *)
let apply_sim_mode opts tb =
  if opts.slow_sim then Hw.Machine.set_fast_path tb.Testbed.machine false

let hex8 s = Sanctorum_util.Hex.encode (String.sub s 0 8)

let backend_conv =
  Cmdliner.Arg.enum
    [ ("sanctum", Testbed.Sanctum_backend); ("keystone", Testbed.Keystone_backend) ]

let backend_arg =
  Cmdliner.Arg.(
    value
    & opt backend_conv Testbed.Sanctum_backend
    & info [ "backend"; "b" ] ~docv:"BACKEND"
        ~doc:"Isolation backend: $(b,sanctum) or $(b,keystone).")

let exit_prog = Hw.Isa.[ Op_imm (Add, a7, zero, S.Ecall.exit_enclave); Ecall ]

let cmd_boot tel backend =
  with_telemetry tel @@ fun sink ->
  let tb = Testbed.create ~backend ?sink () in
  arm_checker tel tb.Testbed.sm;
  apply_sim_mode tel tb;
  let sm = tb.Testbed.sm in
  Printf.printf "platform        : %s\n" tb.Testbed.platform.Sanctorum_platform.Platform.name;
  Printf.printf "cores           : %d\n" (Hw.Machine.core_count tb.Testbed.machine);
  Printf.printf "memory          : %d MiB, %d units of %d KiB\n"
    (Hw.Phys_mem.size (Hw.Machine.mem tb.Testbed.machine) / 1024 / 1024)
    (S.memory_units sm)
    (S.memory_unit_bytes sm / 1024);
  Printf.printf "LLC partitioned : %b\n"
    tb.Testbed.platform.Sanctorum_platform.Platform.llc_partitioned;
  Printf.printf "SM measurement  : %s…\n" (hex8 (S.get_field sm S.Field_sm_measurement));
  Printf.printf "SM public key   : %s…\n" (hex8 (S.get_field sm S.Field_public_key));
  Printf.printf "signing enclave : %s… (expected measurement)\n"
    (hex8 (S.get_field sm S.Field_signing_measurement));
  Printf.printf "certificates    : %d bytes\n"
    (String.length (S.get_field sm S.Field_certificates))

let cmd_run tel backend count quantum =
  with_telemetry tel @@ fun sink ->
  let tb = Testbed.create ~backend ?sink () in
  arm_checker tel tb.Testbed.sm;
  apply_sim_mode tel tb;
  let evbase = 0x10000 in
  let counter = evbase + 4096 in
  let body =
    Hw.Isa.(
      li t0 counter
      @ [ Load (Ld, t1, t0, 0) ]
      @ li t2 count
      @ [
          Branch (Bge, t1, t2, 16);
          Op_imm (Add, t1, t1, 1);
          Store (Sd, t1, t0, 0);
          Jal (zero, -12);
        ]
      @ exit_prog)
  in
  let image = Sanctorum.Image.of_program ~evbase body in
  match Os.install_enclave tb.Testbed.os image with
  | Error e -> Printf.printf "install failed: %s\n" (Sanctorum.Api_error.to_string e)
  | Ok inst ->
      let eid = inst.Os.eid and tid = List.hd inst.Os.tids in
      Printf.printf "enclave 0x%x measuring %s… counting to %d (quantum %d)\n"
        eid
        (hex8 (Result.get_ok (S.enclave_measurement tb.Testbed.sm ~eid)))
        count quantum;
      let entries = ref 0 and finished = ref false in
      while (not !finished) && !entries < 100000 do
        incr entries;
        match
          Os.run_enclave tb.Testbed.os ~eid ~tid ~core:0 ~fuel:1000000 ~quantum ()
        with
        | Ok Os.Exited -> finished := true
        | Ok Os.Preempted -> ()
        | Ok _ | Error _ -> finished := true
      done;
      let paddrs = Sanctorum_attack.Malicious_os.enclave_paddrs tb.Testbed.os ~eid in
      let data =
        List.nth paddrs (List.length (Sanctorum.Image.required_page_tables image) + 1)
      in
      Printf.printf "finished after %d entries (%d AEX); counted %Ld\n" !entries
        (!entries - 1)
        (Hw.Phys_mem.read_u64 (Hw.Machine.mem tb.Testbed.machine) data)

let cmd_attest tel backend =
  with_telemetry tel @@ fun sink ->
  let tb = Testbed.create ~backend ?sink () in
  arm_checker tel tb.Testbed.sm;
  apply_sim_mode tel tb;
  match Testbed.install_signing_enclave tb with
  | Error e -> Printf.printf "signing enclave: %s\n" (Sanctorum.Api_error.to_string e)
  | Ok es ->
      let target = Sanctorum.Image.of_program ~evbase:0x30000 exit_prog in
      (match Os.install_enclave tb.Testbed.os target with
      | Error e -> Printf.printf "target: %s\n" (Sanctorum.Api_error.to_string e)
      | Ok t1 ->
          let session =
            Sanctorum.Attestation.run_remote_attestation tb.Testbed.sm
              ~rng:tb.Testbed.rng ~eid:t1.Os.eid ~es_eid:es.Os.eid
              ~expected_measurement:(Sanctorum.Image.measurement target)
          in
          (match session.Sanctorum.Attestation.verdict with
          | Ok () -> Printf.printf "remote attestation: VERIFIED\n"
          | Error m -> Printf.printf "remote attestation: REJECTED (%s)\n" m);
          Printf.printf "session keys agree: %b\n"
            (session.Sanctorum.Attestation.session_key_verifier
            = session.Sanctorum.Attestation.session_key_enclave))

let cmd_probe tel backend =
  with_telemetry tel @@ fun sink ->
  let tb = Testbed.create ~backend ?sink () in
  arm_checker tel tb.Testbed.sm;
  apply_sim_mode tel tb;
  let image = Sanctorum.Image.of_program ~evbase:0x10000 exit_prog in
  match Os.install_enclave tb.Testbed.os image with
  | Error e -> Printf.printf "install: %s\n" (Sanctorum.Api_error.to_string e)
  | Ok inst ->
      let paddr =
        List.hd (Sanctorum_attack.Malicious_os.enclave_paddrs tb.Testbed.os ~eid:inst.Os.eid)
      in
      let show label result =
        Printf.printf "  %-28s %s\n" label
          (match result with `Denied -> "denied" | `Allowed -> "ALLOWED (bug!)")
      in
      Printf.printf "malicious-OS probes against enclave memory at 0x%x:\n" paddr;
      show "load (ISA)"
        (match Sanctorum_attack.Malicious_os.os_load tb.Testbed.os ~core:1 ~paddr with
        | Sanctorum_attack.Malicious_os.Denied -> `Denied
        | Sanctorum_attack.Malicious_os.Leaked _ -> `Allowed);
      show "store (ISA)"
        (match
           Sanctorum_attack.Malicious_os.os_store tb.Testbed.os ~core:1 ~paddr
             ~value:1L
         with
        | `Denied -> `Denied
        | `Stored -> `Allowed);
      show "execute (ISA)"
        (match Sanctorum_attack.Malicious_os.os_execute tb.Testbed.os ~core:1 ~paddr with
        | `Denied -> `Denied
        | `Executed -> `Allowed);
      show "DMA read"
        (match Sanctorum_attack.Malicious_os.dma_read tb.Testbed.os ~paddr ~len:8 with
        | `Denied -> `Denied
        | `Leaked _ -> `Allowed);
      show "DMA write"
        (match Sanctorum_attack.Malicious_os.dma_write tb.Testbed.os ~paddr ~data:"x" with
        | `Denied -> `Denied
        | `Stored -> `Allowed)

let cmd_leak tel backend secret =
  with_telemetry tel @@ fun sink ->
  let tb =
    Testbed.create ~backend ~l2:Sanctorum_attack.Cache_probe.recommended_l2
      ?sink ()
  in
  arm_checker tel tb.Testbed.sm;
  apply_sim_mode tel tb;
  match Sanctorum_attack.Cache_probe.run tb ~secret () with
  | Error m -> Printf.printf "error: %s\n" m
  | Ok o ->
      Format.printf "%a@." Sanctorum_attack.Cache_probe.pp_outcome o;
      Printf.printf "%s\n"
        (if o.Sanctorum_attack.Cache_probe.leaked then
           "the attacker recovered the enclave's secret"
         else "no signal: the LLC partition holds")

(* `sanctorum_demo chaos`: honest workloads under a seeded fault storm;
   non-zero exit on any fail-open evidence or post-recovery finding.
   Every failure reproduces from the command line echoed below. *)
let cmd_chaos tel backend seed faults rounds =
  match Sanctorum_faults.Spec.parse faults with
  | Error msg ->
      Printf.eprintf "sanctorum_demo chaos: --faults %S: %s\n" faults msg;
      exit 2
  | Ok spec ->
      with_telemetry tel @@ fun sink ->
      let seed = Int64.of_int seed in
      let r =
        Sanctorum_faults.Chaos.run ~backend ~rounds ?sink ~seed ~spec ()
      in
      Format.printf "%a" Sanctorum_faults.Chaos.pp r;
      if not (Sanctorum_faults.Chaos.ok r) then begin
        Printf.printf
          "reproduce with: sanctorum_demo chaos --backend %s --seed %Ld \
           --faults %s --rounds %d\n"
          (Testbed.backend_name backend)
          seed
          (Sanctorum_faults.Spec.to_string spec)
          rounds;
        exit 1
      end

(* `sanctorum_demo workload`: the closed-loop multicore load generator.
   It owns its telemetry sink (the analyzers consume the trace between
   rounds), so it does not take the shared --trace flags. *)
let cmd_workload backend seed cores enclaves rounds mix fuel quantum
    check_every =
  let module W = Sanctorum_workload.Workload in
  match W.mix_of_string mix with
  | Error msg ->
      Printf.eprintf "sanctorum_demo workload: --mix: %s\n" msg;
      exit 2
  | Ok mix ->
      let cfg =
        {
          W.seed;
          backend;
          cores;
          enclaves;
          rounds;
          mix;
          fuel;
          quantum;
          check_every;
        }
      in
      let r = W.run cfg in
      Format.printf "%a@." W.pp_report r;
      if r.W.rp_findings <> [] then begin
        Format.printf "%a@." An.Report.pp_list r.W.rp_findings;
        exit 1
      end;
      if not (r.W.rp_drained && r.W.rp_reclaimed) then begin
        Printf.printf "workload: teardown incomplete (drained=%b reclaimed=%b)\n"
          r.W.rp_drained r.W.rp_reclaimed;
        exit 1
      end

(* `sanctorum_demo fleet`: the multi-machine cluster layer — N shards,
   one OCaml domain each, attested join, policy placement, quarantine
   migration. Exit 1 on any dirty shard or unaccounted job. *)
let cmd_fleet backend seed shards cores enclaves jobs target mix policy
    retry_budget batch_rounds faults faulty_shards rogue net_faults net_horizon
    =
  let module Fl = Sanctorum_fleet.Cluster in
  let module W = Sanctorum_workload.Workload in
  let parse_shards what s =
    if s = "" then []
    else
      String.split_on_char ',' s
      |> List.map (fun t ->
             match int_of_string_opt (String.trim t) with
             | Some i when i >= 0 -> i
             | _ ->
                 Printf.eprintf "sanctorum_demo fleet: %s: bad shard id %S\n"
                   what t;
                 exit 2)
  in
  let mix =
    match W.mix_of_string mix with
    | Ok m -> m
    | Error msg ->
        Printf.eprintf "sanctorum_demo fleet: --mix: %s\n" msg;
        exit 2
  in
  let policy =
    match Sanctorum_fleet.Policy.of_string policy with
    | Ok p -> p
    | Error msg ->
        Printf.eprintf "sanctorum_demo fleet: --policy: %s\n" msg;
        exit 2
  in
  let fault_spec =
    if faults = "" then None
    else
      match Sanctorum_faults.Spec.parse faults with
      | Ok s -> Some s
      | Error msg ->
          Printf.eprintf "sanctorum_demo fleet: --faults: %s\n" msg;
          exit 2
  in
  let faulty = parse_shards "--faulty-shards" faulty_shards in
  let faults =
    match fault_spec with
    | None -> []
    | Some spec ->
        let targets = if faulty = [] then List.init shards Fun.id else faulty in
        List.map (fun i -> (i, spec)) targets
  in
  let net =
    match Sanctorum_fleet.Netfault.parse net_faults with
    | Ok spec -> spec
    | Error msg ->
        Printf.eprintf "sanctorum_demo fleet: --net-faults: %s\n" msg;
        exit 2
  in
  let cfg =
    {
      Fl.default with
      Fl.seed;
      backend;
      shards;
      cores;
      enclaves;
      jobs;
      target;
      mix;
      policy;
      retry_budget;
      batch_rounds;
      faults;
      rogue = parse_shards "--rogue" rogue;
      net;
      net_horizon;
    }
  in
  (* bad numeric flags surface as Invalid_argument from the config
     validator: a usage error (exit 2), not a dirty run (exit 1) *)
  (match Fl.validate cfg with
  | () -> ()
  | exception Invalid_argument msg ->
      Printf.eprintf "sanctorum_demo fleet: %s\n" msg;
      exit 2);
  let r = Fl.run cfg in
  Format.printf "%a@." Fl.pp_outcome r;
  if not r.Fl.r_clean then begin
    Printf.printf
      "fleet: dirty run (findings=%d accounted=%b) — failing closed\n"
      r.Fl.r_findings r.Fl.r_accounted;
    exit 1
  end

(* `sanctorum_demo modelcheck`: bounded exhaustive exploration of the
   SM API state space (lib/analysis/modelcheck.mli). Exit 1 on any
   finding, 2 on a bad flag or replay path. *)
let cmd_modelcheck tel backend depth cores units diff cold inject max_states
    replay =
  let module M = An.Modelcheck in
  let backend =
    match backend with
    | Testbed.Sanctum_backend -> M.Sanctum
    | Testbed.Keystone_backend -> M.Keystone
  in
  let inject =
    match inject with
    | None -> None
    | Some s -> (
        match M.fault_of_string s with
        | Ok f -> Some f
        | Error msg ->
            Printf.eprintf "sanctorum_demo modelcheck: --inject: %s\n" msg;
            exit 2)
  in
  with_telemetry tel @@ fun sink ->
  let cfg =
    {
      M.backend;
      depth;
      cores;
      units;
      diff;
      warm = not cold;
      inject;
      max_states;
      sink = Option.value sink ~default:Tel.Sink.null;
    }
  in
  match replay with
  | Some path_str -> (
      match M.path_of_string path_str with
      | Error msg ->
          Printf.eprintf "sanctorum_demo modelcheck: --replay: %s\n" msg;
          exit 2
      | Ok path -> (
          match M.replay cfg path with
          | exception Invalid_argument msg ->
              Printf.eprintf "sanctorum_demo modelcheck: %s\n" msg;
              exit 2
          | steps, report ->
              Printf.printf "replaying %d actions on %s%s%s:\n"
                (List.length path)
                (M.backend_name backend)
                (if diff then
                   " (diffed against " ^ M.backend_name (M.other_backend backend)
                   ^ ")"
                 else "")
                (if cold then ", cold start" else "");
              List.iter
                (fun st ->
                  match st.M.r_verdict_other with
                  | None ->
                      Printf.printf "  %-24s -> %s\n"
                        (M.action_to_string st.M.r_action)
                        st.M.r_verdict
                  | Some other ->
                      Printf.printf "  %-24s -> %s | %s\n"
                        (M.action_to_string st.M.r_action)
                        st.M.r_verdict other)
                steps;
              if report = [] then Printf.printf "final state: catalog clean\n"
              else begin
                Printf.printf "final state: %d violations\n" (List.length report);
                Format.printf "%a@." An.Report.pp_list report;
                exit 1
              end))
  | None -> (
      match M.explore cfg with
      | exception Invalid_argument msg ->
          Printf.eprintf "sanctorum_demo modelcheck: %s\n" msg;
          exit 2
      | s ->
          let ok_edges = s.M.s_states - 1 + s.M.s_dedup_hits in
          Printf.printf
            "modelcheck %s depth=%d cores=%d units=%d%s%s\n\
            \  states    %d%s\n\
            \  edges     %d (%d accepted)\n\
            \  dedup     %d hits (%.1f%% of accepted edges)\n\
            \  digest    %s\n"
            (M.backend_name backend) depth cores units
            (if diff then " --diff" else "")
            (if cold then " --cold" else "")
            s.M.s_states
            (if s.M.s_truncated then " (truncated at --max-states)" else "")
            s.M.s_edges ok_edges s.M.s_dedup_hits
            (if ok_edges = 0 then 0.
             else 100. *. float s.M.s_dedup_hits /. float ok_edges)
            s.M.s_state_digest;
          if s.M.s_findings_total = 0 then Printf.printf "no findings\n"
          else begin
            Printf.printf "%d findings%s:\n" s.M.s_findings_total
              (if s.M.s_findings_total > List.length s.M.s_findings then
                 Printf.sprintf " (first %d minimized)"
                   (List.length s.M.s_findings)
               else "");
            List.iter
              (fun f ->
                Printf.printf "  [%s] %s\n    reproduce: %s\n" (M.finding_id f)
                  f.M.f_detail
                  (M.replay_command cfg (M.finding_path f)))
              s.M.s_findings;
            exit 1
          end)

(* `sanctorum_demo check`: run the canonical scenarios on both backends
   with the full analysis harness armed — snapshot pass after every API
   call, lock-discipline and orderliness passes over the recorded trace
   at the end — and fail loudly if anything fires. *)
let cmd_check catalog_only =
  Printf.printf "invariant catalog (%d):\n" (List.length An.Checker.catalog);
  List.iter
    (fun (id, descr) -> Printf.printf "  %-16s %s\n" id descr)
    An.Checker.catalog;
  if catalog_only then ()
  else begin
    let failures = ref 0 in
    let scenario backend name f =
      let sink = Tel.Sink.create ~capacity:(1 lsl 16) () in
      let tb = Testbed.create ~backend ~sink () in
      let sm = tb.Testbed.sm in
      let snap = ref [] in
      S.set_post_api_hook sm
        (Some
           (fun ~api ->
             List.iter
               (fun v -> snap := (api, v) :: !snap)
               (An.Checker.snapshot sm)));
      f tb;
      S.set_post_api_hook sm None;
      let trace_vs = An.Checker.trace (Tel.Sink.events sink) in
      let n = List.length !snap + List.length trace_vs in
      Printf.printf "  %-8s %-16s %6d API calls  %s\n"
        (Testbed.backend_name backend)
        name
        (List.length
           (List.filter
              (fun e ->
                match e.Tel.Event.payload with
                | Tel.Event.Sm_api _ -> true
                | _ -> false)
              (Tel.Sink.events sink)))
        (if n = 0 then "clean" else Printf.sprintf "%d VIOLATIONS" n);
      failures := !failures + n;
      List.iter
        (fun (api, v) ->
          Format.printf "    after %s: %a@." api An.Report.pp v)
        (List.rev !snap);
      List.iter (fun v -> Format.printf "    trace: %a@." An.Report.pp v) trace_vs
    in
    let run_scenario tb =
      (* count in a data page with a short quantum so the run crosses
         several preempt / AEX / resume cycles (§V-C) *)
      let counter = 0x10000 + 4096 in
      let image =
        Sanctorum.Image.of_program ~evbase:0x10000 ~data_pages:1
          Hw.Isa.(
            li t0 counter
            @ [ Load (Ld, t1, t0, 0) ]
            @ li t2 2000
            @ [
                Branch (Bge, t1, t2, 16);
                Op_imm (Add, t1, t1, 1);
                Store (Sd, t1, t0, 0);
                Jal (zero, -12);
              ]
            @ exit_prog)
      in
      match Os.install_enclave tb.Testbed.os image with
      | Error e -> Printf.printf "install: %s\n" (Sanctorum.Api_error.to_string e)
      | Ok inst ->
          let eid = inst.Os.eid and tid = List.hd inst.Os.tids in
          let rec drive resume budget =
            if budget = 0 then ()
            else
              let r =
                if resume then
                  Os.resume_enclave tb.Testbed.os ~eid ~tid ~core:0 ~fuel:100000
                    ~quantum:300 ()
                else
                  Os.run_enclave tb.Testbed.os ~eid ~tid ~core:0 ~fuel:100000
                    ~quantum:300 ()
              in
              match r with
              | Ok Os.Preempted -> drive true (budget - 1)
              | Ok _ | Error _ -> ()
          in
          drive false 50;
          ignore (Os.reclaim_enclave tb.Testbed.os ~eid)
    in
    let attest_scenario tb =
      match Testbed.install_signing_enclave tb with
      | Error _ -> ()
      | Ok es ->
          let target = Sanctorum.Image.of_program ~evbase:0x30000 exit_prog in
          (match Os.install_enclave tb.Testbed.os target with
          | Error _ -> ()
          | Ok t1 ->
              ignore
                (Sanctorum.Attestation.run_remote_attestation tb.Testbed.sm
                   ~rng:tb.Testbed.rng ~eid:t1.Os.eid ~es_eid:es.Os.eid
                   ~expected_measurement:(Sanctorum.Image.measurement target)))
    in
    let churn_scenario tb =
      let image = Sanctorum.Image.of_program ~evbase:0x10000 exit_prog in
      for _ = 1 to 3 do
        match Os.install_enclave tb.Testbed.os image with
        | Error _ -> ()
        | Ok inst ->
            ignore
              (Os.run_enclave tb.Testbed.os ~eid:inst.Os.eid
                 ~tid:(List.hd inst.Os.tids) ~core:0 ~fuel:1000 ());
            ignore (Os.reclaim_enclave tb.Testbed.os ~eid:inst.Os.eid)
      done
    in
    Printf.printf "\nscenarios (snapshot after every API call + trace passes):\n";
    List.iter
      (fun backend ->
        scenario backend "run+preempt" run_scenario;
        scenario backend "attest" attest_scenario;
        scenario backend "lifecycle-churn" churn_scenario)
      [ Testbed.Sanctum_backend; Testbed.Keystone_backend ];
    if !failures = 0 then Printf.printf "all scenarios clean\n"
    else begin
      Printf.printf "%d violations\n" !failures;
      exit 1
    end
  end

open Cmdliner

let tel_term =
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record a full event trace and write it to $(docv) in Chrome \
             trace_event format (open in chrome://tracing or Perfetto).")
  in
  let trace_jsonl =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-jsonl" ] ~docv:"FILE"
          ~doc:"Write the event trace to $(docv) as JSON lines.")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "Print the metrics summary (cache/TLB hit rates, per-API call \
             counts, latency histogram) after the command.")
  in
  let audit =
    Arg.(
      value & flag
      & info [ "audit" ]
          ~doc:"Print the SM audit log: every API decision, accepted or \
                rejected.")
  in
  let check_invariants =
    Arg.(
      value & flag
      & info [ "check-invariants" ]
          ~doc:
            "Run the $(b,Sanctorum_analysis) snapshot checker after every \
             monitor API call and abort (exit 2) on the first violation.")
  in
  let slow_sim =
    Arg.(
      value & flag
      & info [ "slow-sim" ]
          ~doc:
            "Disable the simulator's predecode/fetch fast path and run the \
             reference stepped interpreter. Architecturally identical (the \
             equivalence is property-tested); useful for timing comparisons \
             and for ruling the fast path out when debugging.")
  in
  let mk trace trace_jsonl metrics audit check_invariants slow_sim =
    { trace; trace_jsonl; metrics; audit; check_invariants; slow_sim }
  in
  Term.(
    const mk $ trace $ trace_jsonl $ metrics $ audit $ check_invariants
    $ slow_sim)

let boot_cmd =
  Cmd.v (Cmd.info "boot" ~doc:"Boot the stack and print the monitor's identity.")
    Term.(const cmd_boot $ tel_term $ backend_arg)

let run_term =
  let count =
    Arg.(value & opt int 5000 & info [ "count"; "n" ] ~doc:"Loop iterations.")
  in
  let quantum =
    Arg.(value & opt int 2000 & info [ "quantum"; "q" ] ~doc:"Preemption quantum (cycles).")
  in
  Term.(const cmd_run $ tel_term $ backend_arg $ count $ quantum)

let run_cmd =
  Cmd.v
    (Cmd.info "run" ~doc:"Run a preemptible counting enclave to completion.")
    run_term

let attest_cmd =
  Cmd.v (Cmd.info "attest" ~doc:"Full remote attestation (paper Fig. 7).")
    Term.(const cmd_attest $ tel_term $ backend_arg)

let probe_cmd =
  Cmd.v (Cmd.info "probe" ~doc:"Malicious-OS probes against enclave memory.")
    Term.(const cmd_probe $ tel_term $ backend_arg)

let check_cmd =
  let catalog_only =
    Arg.(
      value & flag
      & info [ "catalog" ] ~doc:"Only print the invariant catalog and exit.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Run every invariant of the analysis catalog over the canonical \
          scenarios on both backends; non-zero exit on any violation.")
    Term.(const cmd_check $ catalog_only)

let chaos_cmd =
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"N"
          ~doc:
            "Fault-schedule seed. The same seed, spec, backend and rounds \
             always reproduce the same schedule and outcome.")
  in
  let faults =
    Arg.(
      value & opt string "all"
      & info [ "faults" ] ~docv:"SPEC"
          ~doc:
            "Comma-separated fault classes, each optionally $(b,:count) — \
             $(b,bitflip), $(b,bitflip2), $(b,irq-drop), $(b,spurious-irq), \
             $(b,ipi-drop), $(b,dma), $(b,mce), or $(b,all). Example: \
             $(b,bitflip:3,mce:1).")
  in
  let rounds =
    Arg.(
      value & opt int 5
      & info [ "rounds" ] ~docv:"R" ~doc:"Honest workload rounds to drive.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Drive honest enclave workloads under a seeded, deterministic fault \
          storm; fail (exit 1) on any fail-open evidence or any invariant \
          finding left after recovery.")
    Term.(const cmd_chaos $ tel_term $ backend_arg $ seed $ faults $ rounds)

let workload_cmd =
  let backend =
    Arg.(
      value
      & opt backend_conv Testbed.Keystone_backend
      & info [ "backend"; "b" ] ~docv:"BACKEND"
          ~doc:
            "Isolation backend: $(b,sanctum) or $(b,keystone). Defaults to \
             keystone — its 4 KiB allocation units are what a many-enclave \
             population needs; sanctum's region-sized units cap the enclave \
             count at a handful.")
  in
  let seed =
    Arg.(
      value & opt string "workload"
      & info [ "seed" ] ~docv:"S"
          ~doc:
            "Determinism seed: the schedule and every architectural outcome \
             are a pure function of (seed, backend, cores, enclaves, rounds, \
             mix).")
  in
  let cores =
    Arg.(value & opt int 4 & info [ "cores" ] ~docv:"N" ~doc:"Core count.")
  in
  let enclaves =
    Arg.(
      value & opt int 64
      & info [ "enclaves" ] ~docv:"M" ~doc:"Concurrent enclave population.")
  in
  let rounds =
    Arg.(
      value & opt int 1000
      & info [ "rounds" ] ~docv:"R" ~doc:"Scheduler rounds to drive.")
  in
  let mix =
    Arg.(
      value & opt string "compute"
      & info [ "mix" ] ~docv:"MIX"
          ~doc:
            "Traffic mix: $(b,compute), $(b,ipc), $(b,paging) or $(b,churn).")
  in
  let fuel =
    Arg.(
      value & opt int 2000
      & info [ "fuel" ] ~docv:"F" ~doc:"Per-quantum fuel budget (instructions).")
  in
  let quantum =
    Arg.(
      value & opt int 500
      & info [ "quantum" ] ~docv:"Q" ~doc:"Preemption quantum (cycles).")
  in
  let check_every =
    Arg.(
      value & opt int 16
      & info [ "check-every" ] ~docv:"K"
          ~doc:
            "Run the invariant checker and trace analyzers every $(docv) \
             rounds (0 = only at the end).")
  in
  Cmd.v
    (Cmd.info "workload"
       ~doc:
         "Closed-loop multicore enclave load generator: M enclaves round-robin \
          scheduled over N cores through create/enter, preempt/resume, mailbox \
          IPC, self-paging and churn, with the analysis passes watching; exit 1 \
          on any finding or on incomplete reclamation.")
    Term.(
      const cmd_workload $ backend $ seed $ cores $ enclaves $ rounds $ mix
      $ fuel $ quantum $ check_every)

let fleet_cmd =
  let backend =
    Arg.(
      value
      & opt backend_conv Testbed.Keystone_backend
      & info [ "backend"; "b" ] ~docv:"BACKEND"
          ~doc:"Isolation backend: $(b,sanctum) or $(b,keystone).")
  in
  let seed =
    Arg.(
      value & opt string "fleet"
      & info [ "seed" ] ~docv:"S"
          ~doc:
            "Determinism seed: shard machines, job streams, placement and \
             attestation nonces all derive from it.")
  in
  let shards =
    Arg.(
      value & opt int 2
      & info [ "shards" ] ~docv:"N"
          ~doc:"Independent machine shards (one OCaml domain each).")
  in
  let cores =
    Arg.(
      value & opt int 4
      & info [ "cores" ] ~docv:"C" ~doc:"Simulated cores per shard.")
  in
  let enclaves =
    Arg.(
      value & opt int 12
      & info [ "enclaves" ] ~docv:"M"
          ~doc:"Per-shard enclave capacity (PMP sizing and batch cap).")
  in
  let jobs =
    Arg.(
      value & opt int 24
      & info [ "jobs" ] ~docv:"J" ~doc:"Total jobs across the fleet.")
  in
  let target =
    Arg.(
      value & opt int 4
      & info [ "target" ] ~docv:"T"
          ~doc:"Exits per job member before the job completes.")
  in
  let mix =
    Arg.(
      value & opt string "compute"
      & info [ "mix" ] ~docv:"MIX"
          ~doc:
            "Traffic mix: $(b,compute), $(b,ipc), $(b,paging) or $(b,churn).")
  in
  let policy =
    Arg.(
      value & opt string "round-robin"
      & info [ "policy" ] ~docv:"P"
          ~doc:
            "Placement policy: $(b,round-robin), $(b,least-loaded) or \
             $(b,affinity).")
  in
  let retry_budget =
    Arg.(
      value & opt int 3
      & info [ "retry-budget" ] ~docv:"B"
          ~doc:
            "Re-placements (migrations + retries) allowed per job before it \
             is failed closed.")
  in
  let batch_rounds =
    Arg.(
      value & opt int 600
      & info [ "batch-rounds" ] ~docv:"R"
          ~doc:"Per-shard scheduler-round cap per generation.")
  in
  let faults =
    Arg.(
      value & opt string ""
      & info [ "faults" ] ~docv:"SPEC"
          ~doc:
            "Fault spec armed on the faulty shards, e.g. $(b,mce:1) or \
             $(b,bitflip:3,ipi-drop:2) (see $(b,chaos)).")
  in
  let faulty_shards =
    Arg.(
      value & opt string ""
      & info [ "faulty-shards" ] ~docv:"IDS"
          ~doc:
            "Comma-separated shard ids the fault spec applies to (default: \
             all shards, when --faults is given).")
  in
  let rogue =
    Arg.(
      value & opt string ""
      & info [ "rogue" ] ~docv:"IDS"
          ~doc:
            "Comma-separated shard ids presenting corrupted attestation \
             evidence; they are refused membership and never receive a job.")
  in
  let net_faults =
    Arg.(
      value & opt string ""
      & info [ "net-faults" ] ~docv:"SPEC"
          ~doc:
            "Link-fault spec armed (independently seeded) on both directions \
             of every cluster<->node link: comma-separated $(b,class:count) \
             terms over $(b,drop), $(b,dup), $(b,corrupt), $(b,delay), \
             $(b,reorder), $(b,part), plus explicit partitions \
             $(b,part\\@START+LEN) in control-plane ticks; $(b,all) is a \
             preset. Corrupted traffic must be caught by the per-node HMAC; \
             lost traffic by retransmit; a partitioned node is fenced, its \
             jobs migrate, and it rejoins only via re-attestation + rekey.")
  in
  let net_horizon =
    Arg.(
      value & opt int 48
      & info [ "net-horizon" ] ~docv:"N"
          ~doc:"Send-index window the per-message link faults land in.")
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "Multi-machine cluster: N independent Machine+SM+OS shards (one \
          OCaml domain each) behind an attested join protocol, a seeded load \
          balancer, and a reliable session layer over a (optionally hostile) \
          link, with quarantine-driven job migration; exit 1 on any dirty \
          shard or unaccounted job, 2 on a bad flag.")
    Term.(
      const cmd_fleet $ backend $ seed $ shards $ cores $ enclaves $ jobs
      $ target $ mix $ policy $ retry_budget $ batch_rounds $ faults
      $ faulty_shards $ rogue $ net_faults $ net_horizon)

let leak_cmd =
  let secret =
    Arg.(value & opt int 5 & info [ "secret"; "s" ] ~doc:"Victim secret, 0-7.")
  in
  Cmd.v (Cmd.info "leak" ~doc:"Prime+probe cache attack against a victim enclave.")
    Term.(const cmd_leak $ tel_term $ backend_arg $ secret)

let modelcheck_cmd =
  let depth =
    Arg.(
      value & opt int 4
      & info [ "depth" ] ~docv:"K"
          ~doc:"Exploration depth bound (API calls past the initial state).")
  in
  let cores =
    Arg.(
      value & opt int 1
      & info [ "cores" ] ~docv:"N" ~doc:"Cores in the model geometry (1-2).")
  in
  let units =
    Arg.(
      value & opt int 2
      & info [ "units" ] ~docv:"U"
          ~doc:"Memory-unit groups exposed to actions (1-4).")
  in
  let diff =
    Arg.(
      value & flag
      & info [ "diff" ]
          ~doc:
            "Run the same action sequences on the other backend in lockstep \
             and report any accept/reject divergence as a finding.")
  in
  let cold =
    Arg.(
      value & flag
      & info [ "cold" ]
          ~doc:
            "Explore from raw boot instead of boot + the canonical bring-up \
             scenario (see the DESIGN.md section on exhaustive checking).")
  in
  let inject =
    Arg.(
      value
      & opt (some string) None
      & info [ "inject" ] ~docv:"FAULT"
          ~doc:
            "Arm a seeded fault as an extra action: $(b,owner-map:U), \
             $(b,lifecycle:E), $(b,thread:T:C) or $(b,meta). The explorer \
             must reach it and the catalog must convict it.")
  in
  let max_states =
    Arg.(
      value & opt int 200_000
      & info [ "max-states" ] ~docv:"N"
          ~doc:"Stop after discovering $(docv) deduplicated states.")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"PATH"
          ~doc:
            "Skip exploration: apply this comma-separated action sequence \
             (as printed in a finding's reproduce line), print each verdict \
             and the final catalog report.")
  in
  Cmd.v
    (Cmd.info "modelcheck"
       ~doc:
         "Bounded exhaustive exploration of the SM API state space on a \
          small-geometry machine: every action at every reachable state up \
          to --depth, with canonical-hash deduplication, the full analysis \
          catalog at every new state, optional cross-backend differential \
          checking, and delta-debugged replayable counterexamples; exit 1 \
          on any finding, 2 on usage errors.")
    Term.(
      const cmd_modelcheck $ tel_term $ backend_arg $ depth $ cores $ units
      $ diff $ cold $ inject $ max_states $ replay)

(* One exit-code convention across every subcommand: 0 clean, 1 any
   finding or failed check, 2 usage errors (bad flag, bad spec, bad
   replay path). Cmdliner maps parse errors to its own 124 by default,
   so the mapping to 2 is done here. *)
let () =
  let doc = "drive the Sanctorum security-monitor reproduction" in
  let cmd =
    Cmd.group ~default:run_term
      (Cmd.info "sanctorum_demo" ~doc)
      [
        boot_cmd; run_cmd; attest_cmd; probe_cmd; leak_cmd; check_cmd;
        chaos_cmd; workload_cmd; fleet_cmd; modelcheck_cmd;
      ]
  in
  exit
    (match Cmd.eval_value cmd with
    | Ok (`Ok ()) | Ok `Help | Ok `Version -> 0
    | Error (`Parse | `Term) -> 2
    | Error `Exn -> Cmd.Exit.internal_error)
