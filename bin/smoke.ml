(* End-to-end smoke driver (kept small; real coverage lives in test/). *)
module Hw = Sanctorum_hw
open Sanctorum_os

let pp_outcome = function
  | Os.Exited -> "exited"
  | Os.Preempted -> "preempted"
  | Os.Faulted c -> Format.asprintf "faulted (%a)" Hw.Trap.pp_cause c
  | Os.Fuel_exhausted -> "fuel exhausted"
  | Os.Killed -> "killed"

let () =
  let tb = Testbed.create () in
  let open Hw.Isa in
  let prog =
    li a0 41
    @ [ Op_imm (Add, a0, a0, 1) ]
    @ li t0 (0x10000 + 4096)
    @ [ Store (Sd, a0, t0, 0); Op_imm (Add, a7, zero, 1); Ecall ]
  in
  let image = Sanctorum.Image.of_program ~evbase:0x10000 prog in
  (match Os.install_enclave tb.Testbed.os image with
  | Error e ->
      Printf.printf "install failed: %s\n" (Sanctorum.Api_error.to_string e)
  | Ok inst ->
      let eid = inst.Os.eid and tid = List.hd inst.Os.tids in
      let meas_sm =
        Result.get_ok (Sanctorum.Sm.enclave_measurement tb.Testbed.sm ~eid)
      in
      Printf.printf "measurement match: %b\n"
        (meas_sm = Sanctorum.Image.measurement image);
      (match Os.run_enclave tb.Testbed.os ~eid ~tid ~core:0 ~fuel:10000 () with
      | Ok o -> Printf.printf "run 1: %s\n" (pp_outcome o)
      | Error e ->
          Printf.printf "run failed: %s\n" (Sanctorum.Api_error.to_string e)));
  (* AEX: an infinite loop preempted by the OS timer, then resumed. *)
  let loop_img = Sanctorum.Image.of_program ~evbase:0x20000 [ j 0 ] in
  (match Os.install_enclave tb.Testbed.os loop_img with
  | Error e ->
      Printf.printf "install2 failed: %s\n" (Sanctorum.Api_error.to_string e)
  | Ok inst ->
      let eid = inst.Os.eid and tid = List.hd inst.Os.tids in
      (match
         Os.run_enclave tb.Testbed.os ~eid ~tid ~core:1 ~fuel:100000
           ~quantum:500 ()
       with
      | Ok o -> Printf.printf "run 2 (quantum): %s\n" (pp_outcome o)
      | Error e ->
          Printf.printf "run2 failed: %s\n" (Sanctorum.Api_error.to_string e));
      Printf.printf "aex state saved: %b\n"
        (Result.get_ok (Sanctorum.Sm.thread_has_aex_state tb.Testbed.sm ~tid));
      (match
         Os.resume_enclave tb.Testbed.os ~eid ~tid ~core:1 ~fuel:2000
           ~quantum:500 ()
       with
      | Ok o -> Printf.printf "resume: %s\n" (pp_outcome o)
      | Error e ->
          Printf.printf "resume failed: %s\n" (Sanctorum.Api_error.to_string e)));
  (* Signing enclave + full remote attestation. *)
  match Testbed.install_signing_enclave tb with
  | Error e ->
      Printf.printf "signing install failed: %s\n"
        (Sanctorum.Api_error.to_string e)
  | Ok es -> begin
      let target =
        Sanctorum.Image.of_program ~evbase:0x30000
          [ Op_imm (Add, a7, zero, 1); Ecall ]
      in
      match Os.install_enclave tb.Testbed.os target with
      | Error e ->
          Printf.printf "target install failed: %s\n"
            (Sanctorum.Api_error.to_string e)
      | Ok t1 ->
          let session =
            Sanctorum.Attestation.run_remote_attestation tb.Testbed.sm
              ~rng:tb.Testbed.rng ~eid:t1.Os.eid ~es_eid:es.Os.eid
              ~expected_measurement:(Sanctorum.Image.measurement target)
          in
          Printf.printf "remote attestation: %s, keys agree: %b\n"
            (match session.Sanctorum.Attestation.verdict with
            | Ok () -> "ok"
            | Error m -> "FAIL: " ^ m)
            (session.Sanctorum.Attestation.session_key_verifier
            = session.Sanctorum.Attestation.session_key_enclave)
    end
