(* Experiment T1 (paper §VII-A): regenerate the TCB size table for this
   reproduction, with the same exclusions the paper applies — the paper
   counts 5785 LOC total, of which 1011 LOC is the platform-independent
   monitor core once cryptography, libc-equivalents and boot plumbing
   are excluded. *)

let count_file path =
  let ic = open_in path in
  let rec go n =
    match input_line ic with
    | line ->
        let trimmed = String.trim line in
        let is_code =
          trimmed <> ""
          && not (String.length trimmed >= 2 && String.sub trimmed 0 2 = "(*")
        in
        go (if is_code then n + 1 else n)
    | exception End_of_file ->
        close_in ic;
        n
  in
  go 0

let count_dir dir =
  match Sys.readdir dir with
  | entries ->
      Array.fold_left
        (fun acc f ->
          if Filename.check_suffix f ".ml" || Filename.check_suffix f ".mli"
          then acc + count_file (Filename.concat dir f)
          else acc)
        0 entries
  | exception Sys_error _ -> 0

let () =
  let root =
    (* Run from the repo root or from _build; find lib/ upward. A dune
       build tree has its own lib/ copies, so never settle inside
       _build — counts must come from the checked-in sources. *)
    let under_build d =
      List.exists (( = ) "_build") (String.split_on_char '/' d)
    in
    let rec find d =
      if (not (under_build d)) && Sys.file_exists (Filename.concat d "lib/core")
      then d
      else begin
        let parent = Filename.dirname d in
        if parent = d then failwith "cannot locate repo root" else find parent
      end
    in
    find (Sys.getcwd ())
  in
  let dir name = count_dir (Filename.concat root name) in
  let core = dir "lib/core" in
  let crypto = dir "lib/crypto" in
  let hw = dir "lib/hw" in
  let platform = dir "lib/platform" in
  let util = dir "lib/util" in
  let os = dir "lib/os" in
  let attack = dir "lib/attack" in
  let telemetry = dir "lib/telemetry" in
  let analysis = dir "lib/analysis" in
  let faults = dir "lib/faults" in
  let total =
    core + crypto + hw + platform + util + os + attack + telemetry + analysis
    + faults
  in
  Printf.printf "T1: trusted code base size (cf. paper §VII-A)\n";
  Printf.printf "%-34s %8s %14s\n" "component" "LOC" "paper analogue";
  let row name loc paper = Printf.printf "%-34s %8d %14s\n" name loc paper in
  row "monitor core (lib/core)" core "1011 (C99)";
  row "cryptography (lib/crypto)" crypto "(excluded)";
  row "platform backends (lib/platform)" platform "(platform)";
  row "hardware model (lib/hw)" hw "(is hardware)";
  row "util (lib/util)" util "(libc equiv)";
  row "untrusted OS model (lib/os)" os "(untrusted)";
  row "adversary models (lib/attack)" attack "(untrusted)";
  row "telemetry (lib/telemetry)" telemetry "(tooling)";
  row "invariant checker (lib/analysis)" analysis "(tooling)";
  row "fault injection (lib/faults)" faults "(tooling)";
  Printf.printf "%-34s %8d %14s\n" "total" total "5785";
  Printf.printf
    "\nTCB in this model = monitor core + crypto + platform glue = %d LOC\n"
    (core + crypto + platform);
  Printf.printf
    "paper: 5785 LOC total (5264 C + 521 asm); 1011 LOC platform-independent\n"
